#include "ranging/wormhole_detector.hpp"

#include <stdexcept>

#include "sim/time.hpp"

namespace sld::ranging {

ProbabilisticWormholeDetector::ProbabilisticWormholeDetector(
    double detection_rate, std::uint64_t seed)
    : detection_rate_(detection_rate), seed_(seed) {
  if (detection_rate_ < 0.0 || detection_rate_ > 1.0)
    throw std::invalid_argument(
        "ProbabilisticWormholeDetector: rate outside [0, 1]");
}

bool ProbabilisticWormholeDetector::detects(const WormholeEvidence& evidence,
                                            util::Rng& rng) const {
  (void)rng;  // per-link verdicts are sticky, not re-drawn per packet
  if (evidence.sender_faked_indication) return true;
  if (!evidence.via_wormhole) return false;
  // Keyed uniform draw per (receiver, sender) link.
  std::uint64_t state = seed_ ^ 0x77686f6c65ULL;
  state ^= (static_cast<std::uint64_t>(evidence.receiver_id) << 32) |
           evidence.sender_id;
  const std::uint64_t h = util::splitmix64(state);
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < detection_rate_;
}

GeographicLeashDetector::GeographicLeashDetector(double margin_ft)
    : margin_ft_(margin_ft) {
  if (margin_ft_ < 0.0)
    throw std::invalid_argument("GeographicLeashDetector: negative margin");
}

TemporalLeashDetector::TemporalLeashDetector(double max_clock_skew_cycles,
                                             double range_ft)
    : max_clock_skew_cycles_(max_clock_skew_cycles), range_ft_(range_ft) {
  if (max_clock_skew_cycles < 0.0)
    throw std::invalid_argument("TemporalLeashDetector: negative skew");
  if (range_ft <= 0.0)
    throw std::invalid_argument("TemporalLeashDetector: bad range");
}

double TemporalLeashDetector::max_legitimate_flight_cycles() const {
  return sim::propagation_cycles(range_ft_) + max_clock_skew_cycles_;
}

bool TemporalLeashDetector::detects(const WormholeEvidence& evidence,
                                    util::Rng& rng) const {
  (void)rng;  // deterministic detector
  if (evidence.sender_faked_indication) return true;
  if (!evidence.has_timestamps) return false;
  const double flight =
      evidence.rx_timestamp_cycles - evidence.tx_timestamp_cycles;
  return flight > max_legitimate_flight_cycles();
}

bool GeographicLeashDetector::detects(const WormholeEvidence& evidence,
                                      util::Rng& rng) const {
  (void)rng;  // deterministic detector
  if (evidence.sender_faked_indication) return true;
  // Geographic leashes need the receiver's own location; a node that has
  // not localized yet cannot evaluate them.
  if (!evidence.receiver_knows_position) return false;
  // A signal physically measured close by while claiming an origin farther
  // than one radio range (+margin) cannot have come directly.
  const double claimed =
      util::distance(evidence.receiver_position,
                     evidence.claimed_sender_position);
  return claimed > evidence.sender_range_ft + margin_ft_;
}

}  // namespace sld::ranging
