// Pairwise time synchronization (TPSN-style symmetric exchange). The paper
// contrasts its RTT filter against temporal leashes, which "require a
// secure and tight time synchronization"; this module provides that
// substrate so the comparison is concrete: sender-receiver sync via a
// timestamped two-way exchange, its achievable precision under the same
// mote timing model, and the classic pulse-delay attack that defeats naive
// sync (and which authenticated timestamps alone cannot prevent).
//
// With the Figure-3 timestamps, offset = ((t2 - t1) - (t4 - t3)) / 2 and
// one-way delay = ((t2 - t1) + (t4 - t3)) / 2; the estimate's error is
// bounded by the asymmetry of the two directions' hardware delays.
#pragma once

#include "ranging/rtt.hpp"
#include "util/rng.hpp"

namespace sld::ranging {

struct TimeSyncResult {
  /// Estimated clock offset (receiver - sender), cycles.
  double offset_cycles = 0.0;
  /// Estimated one-way propagation + hardware delay, cycles.
  double delay_cycles = 0.0;
};

/// Receiver turnaround between receiving the request and stamping the
/// reply, in receiver-clock cycles (fixed, so it cancels exactly in the
/// drift-free symmetric exchange).
inline constexpr double kSyncTurnaroundCycles = 500.0;

/// One synchronization exchange between clocks that differ by
/// `true_offset_cycles`; an attacker may hold the reply back by
/// `attacker_delay_cycles` (the pulse-delay attack), which corrupts the
/// offset estimate by half the injected delay.
TimeSyncResult synchronize(const MoteTimingModel& model, double distance_ft,
                           double true_offset_cycles,
                           double attacker_delay_cycles, util::Rng& rng);

/// Like synchronize(), but the receiver's crystal runs at a rate of
/// (1 + drift_ppm * 1e-6) relative to the sender's. Drift accrues over the
/// exchange itself: the forward-path delays and the receiver's turnaround
/// are observed through the skewed clock, so the offset estimate picks up
/// an extra error of about drift * (forward delay + turnaround / 2) that
/// the symmetric exchange cannot cancel. drift_ppm = 0 reproduces
/// synchronize() bit-for-bit.
TimeSyncResult synchronize_drifting(const MoteTimingModel& model,
                                    double distance_ft,
                                    double true_offset_cycles,
                                    double drift_ppm,
                                    double attacker_delay_cycles,
                                    util::Rng& rng);

/// Worst-case honest offset error of one exchange: half the spread of the
/// per-edge hardware delay (the asymmetry bound).
double max_sync_error_cycles(const MoteTimingModel& model);

/// Drift-aware bound for exchanges up to `max_distance_ft`: the asymmetry
/// bound plus the worst-case drift accrual over the forward path and
/// turnaround, with a 1 / (1 - |rho|) safety factor covering the skewed
/// turnaround conversion for either drift sign.
double max_sync_error_cycles(const MoteTimingModel& model,
                             double max_drift_ppm, double max_distance_ft);

}  // namespace sld::ranging
