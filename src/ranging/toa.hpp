// Time-of-Arrival ranging (paper §1 lists ToA among the usable features,
// §2.3 notes the detector works with it like with RSSI). Distance is the
// speed of light times the measured one-way flight time; the dominant
// error is the clock-synchronization error between the two motes, which
// calibration bounds. The resulting distance error is therefore bounded,
// which is all the consistency detector requires.
#pragma once

#include "util/rng.hpp"

namespace sld::ranging {

struct ToaConfig {
  /// Bound on the pairwise clock-sync error, in nanoseconds. 4 ns of
  /// timing error ~ 4 ft of distance error at the speed of light.
  double max_sync_error_ns = 4.0;
};

class ToaRangingModel {
 public:
  explicit ToaRangingModel(ToaConfig config = {});

  const ToaConfig& config() const { return config_; }

  /// Maximum distance error implied by the sync-error bound, in feet.
  double max_error_ft() const;

  /// Honest ToA distance measurement (non-negative, error within bound).
  double measure(double true_distance_ft, util::Rng& rng) const;

  /// Measurement with an attacker's timestamp manipulation of
  /// `manipulation_ns` (positive = signal appears to have flown longer).
  double measure_manipulated(double true_distance_ft, double manipulation_ns,
                             util::Rng& rng) const;

 private:
  ToaConfig config_;
};

}  // namespace sld::ranging
