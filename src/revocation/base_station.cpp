#include "revocation/base_station.hpp"

#include "check/invariant.hpp"
#include "obs/memstats.hpp"
#include "obs/profiler.hpp"

namespace sld::revocation {

BaseStation::BaseStation(RevocationConfig config)
    : config_(config),
      seen_(config.dedup_window),
      lifecycle_(config.lifecycle,
                 static_cast<double>(config.alert_threshold)) {}

void BaseStation::register_beacon(sim::NodeId id, util::Vec2 position) {
  if (config_.lifecycle.enabled) lifecycle_.register_beacon(id, position);
}

bool DedupWindow::insert(const AlertKey& key) {
  if (!set_.insert(key).second) return false;
  order_.push_back(key);
  if (capacity_ != 0 && order_.size() > capacity_) {
    set_.erase(order_.front());
    order_.pop_front();
    ++evictions_;
  }
  return true;
}

std::vector<AlertKey> DedupWindow::snapshot() const {
  return std::vector<AlertKey>(order_.begin(), order_.end());
}

void DedupWindow::restore(const std::vector<AlertKey>& keys) {
  order_.clear();
  set_.clear();
  for (const AlertKey& k : keys) insert(k);
}

namespace {
const char* disposition_name(AlertDisposition d) {
  switch (d) {
    case AlertDisposition::kAccepted:
      return "accepted";
    case AlertDisposition::kAcceptedAndRevoked:
      return "accepted_revoked";
    case AlertDisposition::kIgnoredReporterQuota:
      return "ignored_quota";
    case AlertDisposition::kIgnoredTargetRevoked:
      return "ignored_revoked";
    case AlertDisposition::kIgnoredDuplicate:
      return "ignored_duplicate";
  }
  return "unknown";
}

/// High bit distinguishes internally stamped nonces from caller-assigned
/// ones (SystemContext uses a small counter), so the two can never collide.
constexpr std::uint64_t kAutoNonceBit = 1ULL << 63;
}  // namespace

AlertDisposition BaseStation::process_alert(sim::NodeId reporter,
                                            sim::NodeId target) {
  return process_alert(reporter, target, kAutoNonceBit | ++auto_nonce_);
}

AlertDisposition BaseStation::process_alert(sim::NodeId reporter,
                                            sim::NodeId target,
                                            std::uint64_t nonce) {
  return process_alert(reporter, target, nonce, sim::SimTime{0});
}

AlertDisposition BaseStation::process_alert(sim::NodeId reporter,
                                            sim::NodeId target,
                                            std::uint64_t nonce,
                                            sim::SimTime now) {
  SLD_PROF_SCOPE("bs.process_alert");
  SLD_MEM_SCOPE("revocation");
  const std::uint32_t alerts_before = alert_counter(target);
  const bool revoked_before = revoked_.contains(target);
  LifecycleOutcome lifecycle_outcome;
  const AlertDisposition disposition =
      process_alert_impl(reporter, target, nonce, now, &lifecycle_outcome);
  SLD_INVARIANT(stats_.alerts_received ==
                    stats_.alerts_accepted + stats_.alerts_ignored_quota +
                        stats_.alerts_ignored_revoked +
                        stats_.alerts_ignored_duplicate,
                "alert accounting: received=" << stats_.alerts_received
                    << " accepted=" << stats_.alerts_accepted << " quota="
                    << stats_.alerts_ignored_quota << " revoked_ignored="
                    << stats_.alerts_ignored_revoked << " duplicate="
                    << stats_.alerts_ignored_duplicate);
  SLD_INVARIANT(stats_.revocations == revoked_.size() &&
                    revoked_.size() == revocation_order_.size(),
                "revocation bookkeeping: stat=" << stats_.revocations
                    << " set=" << revoked_.size()
                    << " order=" << revocation_order_.size());
  SLD_INVARIANT(alert_counter(target) >= alerts_before,
                "alert counter monotonicity: target " << target << " fell from "
                    << alerts_before << " to " << alert_counter(target));
  // With the lifecycle enabled, revocation is driven by decayed evidence
  // + corroboration, not the raw counter — the iff only holds for the
  // paper's permanent scheme.
  SLD_INVARIANT(config_.lifecycle.enabled ||
                    revoked_.contains(target) ==
                        (alert_counter(target) > config_.alert_threshold),
                "revocation iff counter > tau2: target " << target
                    << " counter=" << alert_counter(target) << " tau2="
                    << config_.alert_threshold
                    << " revoked=" << revoked_.contains(target));
  SLD_INVARIANT(!config_.lifecycle.enabled ||
                    lifecycle_.is_revoked(target) == revoked_.contains(target),
                "lifecycle/revoked-set agreement: target " << target
                    << " tracker=" << lifecycle_.is_revoked(target)
                    << " set=" << revoked_.contains(target));
  SLD_INVARIANT(!(revoked_before &&
                  disposition == AlertDisposition::kAcceptedAndRevoked),
                "no double revocation: target " << target
                    << " was already revoked");
  if (trace_.on()) {
    trace_.emit(trace_.event("bs.alert")
                    .f("reporter", reporter)
                    .f("target", target)
                    .f("disposition", disposition_name(disposition))
                    .f("alert_counter", alert_counter(target))
                    .f("report_counter", report_counter(reporter)));
    emit_lifecycle_trace(target, lifecycle_outcome);
    if (disposition == AlertDisposition::kAcceptedAndRevoked) {
      trace_.emit(trace_.event("bs.revoke")
                      .f("target", target)
                      .f("alert_counter", alert_counter(target))
                      .f("threshold", config_.alert_threshold));
    }
  }
  return disposition;
}

void BaseStation::emit_lifecycle_trace(sim::NodeId target,
                                       const LifecycleOutcome& outcome) {
  if (outcome.exonerated) {
    trace_.emit(trace_.event("bs.exonerate")
                    .f("target", target)
                    .f("evidence", outcome.evidence));
  }
  if (outcome.quarantined || outcome.guard_refused) {
    if (outcome.cell_known) {
      trace_.emit(trace_.event("coverage.usable_beacons")
                      .f("cx", outcome.cell_x)
                      .f("cy", outcome.cell_y)
                      .f("usable", outcome.cell_usable));
    }
    if (outcome.escalated) {
      trace_.emit(trace_.event("bs.escalate")
                      .f("target", target)
                      .f("evidence", outcome.evidence)
                      .f("usable", outcome.cell_usable));
    }
    if (outcome.quarantined) {
      trace_.emit(trace_.event("bs.quarantine")
                      .f("target", target)
                      .f("evidence", outcome.evidence));
    }
  }
}

void BaseStation::settle(sim::SimTime now) {
  if (!config_.lifecycle.enabled) return;
  for (const auto& [id, outcome] : lifecycle_.settle(now)) {
    ++stats_.exonerations;
    if (trace_.on()) {
      trace_.emit(trace_.event("bs.exonerate")
                      .f("target", id)
                      .f("evidence", outcome.evidence));
    }
  }
  if (trace_.on()) {
    for (const auto& cell : lifecycle_.census_all(now)) {
      trace_.emit(trace_.event("coverage.usable_beacons")
                      .f("cx", cell.cell_x)
                      .f("cy", cell.cell_y)
                      .f("usable", cell.usable));
    }
  }
}

LifecyclePhase BaseStation::lifecycle_phase(sim::NodeId beacon,
                                            sim::SimTime now) const {
  if (config_.lifecycle.enabled) return lifecycle_.phase(beacon, now);
  return revoked_.contains(beacon) ? LifecyclePhase::kRevoked
                                   : LifecyclePhase::kClear;
}

AlertDisposition BaseStation::process_alert_impl(
    sim::NodeId reporter, sim::NodeId target, std::uint64_t nonce,
    sim::SimTime now, LifecycleOutcome* lifecycle_outcome) {
  ++stats_.alerts_received;

  // Idempotence: a (reporter, target, nonce) key is counted at most once
  // within the dedup window, whatever the transport did to the packet in
  // between.
  const std::uint64_t evictions_before = seen_.evictions();
  if (!seen_.insert(AlertKey{reporter, target, nonce})) {
    ++stats_.alerts_ignored_duplicate;
    return AlertDisposition::kIgnoredDuplicate;
  }
  stats_.dedup_evictions += seen_.evictions() - evictions_before;

  // Paper: accept iff the reporter's report counter has not exceeded tau1
  // and the target is not revoked. Note the reporter being revoked does
  // NOT disqualify its alerts.
  if (revoked_.contains(target)) {
    ++stats_.alerts_ignored_revoked;
    return AlertDisposition::kIgnoredTargetRevoked;
  }
  auto& reports = report_counter_[reporter];
  if (reports > config_.report_quota) {
    ++stats_.alerts_ignored_quota;
    return AlertDisposition::kIgnoredReporterQuota;
  }

  ++reports;
  auto& alerts = alert_counter_[target];
  ++alerts;
  ++stats_.alerts_accepted;

  if (!config_.lifecycle.enabled) {
    if (alerts > config_.alert_threshold) {
      revoked_.insert(target);
      revocation_order_.push_back(target);
      ++stats_.revocations;
      return AlertDisposition::kAcceptedAndRevoked;
    }
    return AlertDisposition::kAccepted;
  }

  // Lifecycle path: the raw counter above stays untouched (it still
  // feeds suspiciousness-priority heuristics); the decayed evidence
  // decides the transitions.
  *lifecycle_outcome = lifecycle_.observe(reporter, target, now);
  if (lifecycle_outcome->exonerated) ++stats_.exonerations;
  if (lifecycle_outcome->guard_refused) ++stats_.guard_refusals;
  if (lifecycle_outcome->quarantined) {
    ++stats_.quarantines;
    if (lifecycle_outcome->escalated) ++stats_.escalations;
    if (lifecycle_outcome->cell_known &&
        lifecycle_outcome->cell_usable < config_.lifecycle.min_usable_per_cell &&
        !lifecycle_outcome->escalated)
      ++stats_.coverage_floor_violations;
  }
  if (lifecycle_outcome->revoked) {
    revoked_.insert(target);
    revocation_order_.push_back(target);
    ++stats_.revocations;
    return AlertDisposition::kAcceptedAndRevoked;
  }
  return AlertDisposition::kAccepted;
}

std::uint32_t BaseStation::alert_counter(sim::NodeId beacon) const {
  const auto it = alert_counter_.find(beacon);
  return it == alert_counter_.end() ? 0 : it->second;
}

std::uint32_t BaseStation::report_counter(sim::NodeId beacon) const {
  const auto it = report_counter_.find(beacon);
  return it == report_counter_.end() ? 0 : it->second;
}

BaseStationState BaseStation::export_state() const {
  BaseStationState state;
  state.alert_counter = alert_counter_;
  state.report_counter = report_counter_;
  state.revocation_order = revocation_order_;
  state.seen = seen_.snapshot();
  state.auto_nonce = auto_nonce_;
  state.stats = stats_;
  state.lifecycle = lifecycle_.export_state();
  return state;
}

void BaseStation::import_state(const BaseStationState& state) {
  alert_counter_ = state.alert_counter;
  report_counter_ = state.report_counter;
  revocation_order_ = state.revocation_order;
  revoked_ = std::unordered_set<sim::NodeId>(state.revocation_order.begin(),
                                             state.revocation_order.end());
  seen_.restore(state.seen);
  auto_nonce_ = state.auto_nonce;
  stats_ = state.stats;
  lifecycle_.import_state(state.lifecycle);
}

}  // namespace sld::revocation
