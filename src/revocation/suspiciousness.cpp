#include "revocation/suspiciousness.hpp"

#include <stdexcept>

namespace sld::revocation {

SuspiciousnessResult evaluate_suspiciousness(
    const std::vector<sim::AlertPayload>& alerts,
    const SuspiciousnessConfig& config) {
  if (config.iterations == 0)
    throw std::invalid_argument("evaluate_suspiciousness: zero iterations");
  if (config.revocation_threshold <= 0.0)
    throw std::invalid_argument("evaluate_suspiciousness: bad threshold");

  // Deduplicate accusations and enforce the per-reporter quota in arrival
  // order.
  std::unordered_map<sim::NodeId, std::unordered_set<sim::NodeId>>
      accusers_of;  // target -> reporters
  std::unordered_map<sim::NodeId, std::unordered_set<sim::NodeId>>
      accused_by;  // reporter -> targets
  for (const auto& a : alerts) {
    auto& targets = accused_by[a.reporter];
    if (!targets.contains(a.target) &&
        targets.size() >= config.per_reporter_target_quota)
      continue;
    targets.insert(a.target);
    accusers_of[a.target].insert(a.reporter);
  }

  SuspiciousnessResult result;
  // Everyone starts fully trusted and unsuspected.
  for (const auto& [reporter, targets] : accused_by) {
    (void)targets;
    result.trust[reporter] = 1.0;
  }
  for (const auto& [target, reporters] : accusers_of) {
    (void)reporters;
    result.suspicion[target] = 0.0;
  }

  for (std::size_t it = 0; it < config.iterations; ++it) {
    // suspicion from current trust...
    for (auto& [target, s] : result.suspicion) {
      s = 0.0;
      for (const auto r : accusers_of.at(target)) {
        const auto t = result.trust.find(r);
        s += t == result.trust.end() ? 1.0 : t->second;
      }
    }
    // ...then trust from current suspicion.
    for (auto& [reporter, t] : result.trust) {
      const auto s = result.suspicion.find(reporter);
      t = 1.0 / (1.0 + (s == result.suspicion.end() ? 0.0 : s->second));
    }
  }

  for (const auto& [target, s] : result.suspicion) {
    if (s >= config.revocation_threshold) result.revoked.insert(target);
  }
  return result;
}

}  // namespace sld::revocation
