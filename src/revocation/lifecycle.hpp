// Evidence-lifecycle revocation (the framing-resistance layer).
//
// The paper's scheme revokes a beacon permanently the moment its alert
// counter exceeds tau2 — so a colluding reporter clique that stays under
// the per-reporter tau1 budget can *frame* benign beacons, and every
// successful framing permanently shrinks localization coverage. This
// module replaces the one-way door with a per-beacon lifecycle
//
//     clear -> suspected -> quarantined -> revoked
//                  ^              |
//                  +- exonerated <+
//
// driven by *decayed* evidence rather than a raw counter:
//
//   * every accepted alert adds one unit of evidence; evidence decays
//     exponentially in sim time with a configurable half-life, so stale
//     accusations age out instead of accumulating forever;
//   * evidence > tau2 quarantines the target (reversible sequestration:
//     sensors stop using it, but its state is kept and its accusers keep
//     accruing corroboration);
//   * permanent revocation additionally requires the decayed evidence to
//     reach `revocation_evidence_min` AND >= `corroboration_k`
//     geometrically independent, range-plausible reporters — a small
//     colluder clique (each pair-deduped to one accepted alert per
//     target) can quarantine but can never permanently revoke;
//   * a quarantined beacon whose evidence decays below `clear_threshold`
//     is exonerated and returns to service (re-suspicion starts over);
//   * a *coverage guard* refuses to quarantine when doing so would drop
//     the target's deployment cell below `min_usable_per_cell` usable
//     beacons, unless the evidence has escalated past
//     `escalation_threshold` (then the quarantine proceeds and is traced
//     as `bs.escalate`).
//
// Determinism: state mutates only at alert times (plus an explicit
// end-of-trial settle), so the lifecycle is a pure function of the timed
// accepted-alert history — a WAL replay of the same (reporter, target,
// time) sequence reproduces it byte-for-byte. The decay factor uses only
// basic IEEE arithmetic (ldexp + a truncated Taylor polynomial), never
// libm exp/exp2, so every build computes bit-identical evidence.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/message.hpp"
#include "sim/time.hpp"
#include "util/geometry.hpp"

namespace sld::revocation {

struct LifecycleConfig {
  /// Master switch. Off (the default) leaves the paper's permanent
  /// revocation behaviour byte-identical to the seed.
  bool enabled = false;
  /// Evidence half-life: one accepted alert is worth 1.0 immediately and
  /// 0.5 one half-life later.
  sim::SimTime half_life_ns = 300 * sim::kSecond;
  /// Evidence below this clears a suspicion (and exonerates a
  /// quarantined beacon).
  double clear_threshold = 0.5;
  /// Permanent revocation needs >= this many geometrically independent,
  /// range-plausible distinct reporters.
  std::uint32_t corroboration_k = 3;
  /// Two reporters closer than this (feet) count as one vantage point.
  double independence_min_ft = 25.0;
  /// A reporter farther than this (feet) from the target cannot have
  /// probed it and is implausible as a witness.
  double plausible_range_ft = 150.0;
  /// Coverage guard: refuse to quarantine when fewer than this many
  /// other usable beacons remain in the target's deployment cell.
  std::uint32_t min_usable_per_cell = 1;
  /// Side length (feet) of the square deployment cells the coverage
  /// guard reasons about.
  double cell_ft = 250.0;
  /// Evidence at which a quarantine overrides the coverage guard
  /// (traced as bs.escalate).
  double escalation_threshold = 6.0;
  /// Minimum decayed evidence for permanent revocation (over and above
  /// corroboration) — keeps a K-clique below the permanent bar when
  /// admission pair-dedup limits each member to one alert per target.
  double revocation_evidence_min = 4.0;
};

enum class LifecyclePhase : std::uint8_t {
  kClear = 0,
  kSuspected = 1,
  kQuarantined = 2,
  kRevoked = 3,
  kExonerated = 4,
};

const char* lifecycle_phase_name(LifecyclePhase phase);

/// Deterministic 2^-(elapsed / half_life). Split into an exact power of
/// two (ldexp) and a fractional part approximated by 1 / p(f ln 2) with p
/// a truncated positive-coefficient Taylor series of e^x — monotone
/// non-increasing in `elapsed` (p is increasing and p(ln 2) < 2, so the
/// value steps *down* across every half-life boundary) and bit-identical
/// on every conforming IEEE-754 implementation.
double decay_factor(sim::SimTime elapsed, sim::SimTime half_life);

/// Serializable per-beacon lifecycle record. Evidence is stored as of
/// `last_update`; queries decay it forward on the fly without mutating,
/// so read paths never perturb the durable image.
struct BeaconLifecycleState {
  double evidence = 0.0;
  sim::SimTime last_update = 0;
  LifecyclePhase phase = LifecyclePhase::kClear;
  /// Distinct accepted reporters, in first-acceptance order (the greedy
  /// corroboration scan iterates this order, so corroboration is a pure
  /// function of the accepted-alert history).
  std::vector<sim::NodeId> reporters;

  friend bool operator==(const BeaconLifecycleState&,
                         const BeaconLifecycleState&) = default;
};

/// What one observed alert (or settle sweep) did to the target's
/// lifecycle — the caller turns these into trace events and stats.
struct LifecycleOutcome {
  bool suspected = false;     // clear/exonerated -> suspected
  bool quarantined = false;   // suspected -> quarantined
  bool escalated = false;     // ... overriding the coverage guard
  bool guard_refused = false; // quarantine blocked by the coverage guard
  bool revoked = false;       // quarantined -> revoked (permanent)
  bool exonerated = false;    // quarantined -> exonerated
  double evidence = 0.0;      // decayed evidence after the update
  /// Coverage-guard context (valid when a quarantine was attempted):
  std::int64_t cell_x = 0;
  std::int64_t cell_y = 0;
  std::uint32_t cell_usable = 0;
  bool cell_known = false;
};

/// The evidence-lifecycle state machine. Owned by a BaseStation; all
/// methods are deterministic and mutation happens only in observe() and
/// settle().
class LifecycleTracker {
 public:
  LifecycleTracker(const LifecycleConfig& config, double quarantine_threshold);

  /// Registers a beacon's ground-truth position (deployment roster). The
  /// roster drives the coverage guard's cell census and the reporter
  /// plausibility check; registration order is the deterministic
  /// iteration order. Re-registering an id updates its position.
  void register_beacon(sim::NodeId id, util::Vec2 position);

  /// Folds one *accepted* alert into the target's lifecycle at time
  /// `now`. Returns the transitions taken.
  LifecycleOutcome observe(sim::NodeId reporter, sim::NodeId target,
                           sim::SimTime now);

  /// Materializes exoneration for every quarantined beacon whose decayed
  /// evidence has fallen below the clear threshold (end-of-trial sweep;
  /// observationally equivalent to the lazy queries, but gives the
  /// exonerations a trace event and a stats tick). Returns one outcome
  /// per exonerated beacon, in roster-registration order then
  /// first-suspicion order for unregistered ids.
  std::vector<std::pair<sim::NodeId, LifecycleOutcome>> settle(
      sim::SimTime now);

  /// Decayed evidence against `beacon` as of `now` (0 if never accused).
  double evidence(sim::NodeId beacon, sim::SimTime now) const;

  /// Lifecycle phase as of `now`. A stored kQuarantined whose evidence
  /// has decayed below the clear threshold reads as kExonerated (the
  /// lazy view; observe()/settle() materialize it).
  LifecyclePhase phase(sim::NodeId beacon, sim::SimTime now) const;

  bool is_quarantined(sim::NodeId beacon, sim::SimTime now) const {
    return phase(beacon, now) == LifecyclePhase::kQuarantined;
  }
  bool is_revoked(sim::NodeId beacon) const;

  /// Usable = neither permanently revoked nor currently quarantined.
  bool usable(sim::NodeId beacon, sim::SimTime now) const;

  /// Usable beacons in `beacon`'s deployment cell, excluding `beacon`
  /// itself. Returns false if the beacon's position is unknown.
  bool cell_census(sim::NodeId beacon, sim::SimTime now, std::int64_t* cell_x,
                   std::int64_t* cell_y, std::uint32_t* usable) const;

  /// Usable-beacon census of every occupied deployment cell, in
  /// first-registration order of the cells.
  struct CellCensus {
    std::int64_t cell_x = 0;
    std::int64_t cell_y = 0;
    std::uint32_t beacons = 0;
    std::uint32_t usable = 0;
  };
  std::vector<CellCensus> census_all(sim::SimTime now) const;

  /// Distinct accepted reporters against `beacon` so far.
  std::size_t distinct_reporters(sim::NodeId beacon) const;

  /// Serializable lifecycle image, in deterministic first-suspicion
  /// order. The roster itself is config-derived (re-registered after a
  /// restore) and is not part of the image.
  std::vector<std::pair<sim::NodeId, BeaconLifecycleState>> export_state()
      const;
  void import_state(
      const std::vector<std::pair<sim::NodeId, BeaconLifecycleState>>& state);

 private:
  BeaconLifecycleState& touch(sim::NodeId beacon);
  /// Greedy independent-witness count: reporters within plausible range
  /// of the target, kept only if >= independence_min_ft from every
  /// already-kept witness, scanned in first-acceptance order.
  std::uint32_t independent_witnesses(const BeaconLifecycleState& st,
                                      const util::Vec2& target_pos) const;

  LifecycleConfig config_;
  double quarantine_threshold_;
  std::unordered_map<sim::NodeId, util::Vec2> positions_;
  std::vector<sim::NodeId> roster_order_;
  std::unordered_map<sim::NodeId, BeaconLifecycleState> states_;
  /// Ids in `states_`, in first-suspicion order (deterministic export).
  std::vector<sim::NodeId> state_order_;
};

}  // namespace sld::revocation
