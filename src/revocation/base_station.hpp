// The base-station revocation scheme (paper §3.1).
//
// Per beacon node the base station keeps
//   * an alert counter  — "records the suspiciousness of this beacon node";
//   * a report counter  — "the number of alerts this node reported and
//                          accepted by the base station".
// An incoming alert (reporter, target) is accepted iff the reporter's
// report counter has not exceeded tau1 AND the target is not yet revoked;
// acceptance increments both counters, and the target is revoked once its
// alert counter exceeds tau2. Alerts from already-revoked reporters are
// still accepted (subject to the same quota), which stops malicious nodes
// from flooding alerts to get benign nodes revoked "before they can report
// any alert".
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "obs/trace.hpp"
#include "revocation/lifecycle.hpp"
#include "sim/message.hpp"
#include "sim/time.hpp"
#include "util/geometry.hpp"

namespace sld::revocation {

struct RevocationConfig {
  /// tau1: maximum report-counter value at which an alert is still
  /// accepted (so each reporter gets tau1 + 1 accepted alerts).
  std::uint32_t report_quota = 10;
  /// tau2: a target is revoked once its alert counter *exceeds* this
  /// (i.e. at tau2 + 1 accepted alerts).
  std::uint32_t alert_threshold = 2;
  /// Upper bound on remembered (reporter, target, nonce) dedup keys; the
  /// oldest key is evicted when a new one would exceed it. 0 = unbounded
  /// (the pre-window behaviour). A late duplicate of an evicted key is
  /// counted again, so the window trades bounded memory for idempotence
  /// only across the most recent `dedup_window` submissions — far older
  /// retransmissions than any ARQ produces.
  std::size_t dedup_window = 1u << 16;
  /// Evidence-lifecycle layer (decay, quarantine/exoneration, coverage
  /// guard). Disabled by default: the paper's permanent revocation.
  LifecycleConfig lifecycle;
};

enum class AlertDisposition {
  kAccepted,               // counters incremented, target not (yet) revoked
  kAcceptedAndRevoked,     // this alert pushed the target over tau2
  kIgnoredReporterQuota,   // reporter's report counter exceeded tau1
  kIgnoredTargetRevoked,   // target was already revoked
  kIgnoredDuplicate,       // same (reporter, target, nonce) seen before
};

struct BaseStationStats {
  std::uint64_t alerts_received = 0;
  std::uint64_t alerts_accepted = 0;
  std::uint64_t alerts_ignored_quota = 0;
  std::uint64_t alerts_ignored_revoked = 0;
  std::uint64_t alerts_ignored_duplicate = 0;
  std::uint64_t revocations = 0;
  /// Dedup keys aged out of the bounded window (0 while the footprint
  /// stays under `dedup_window`).
  std::uint64_t dedup_evictions = 0;
  /// Lifecycle-layer counters (all 0 while the lifecycle is disabled).
  std::uint64_t quarantines = 0;
  std::uint64_t exonerations = 0;
  std::uint64_t escalations = 0;
  std::uint64_t guard_refusals = 0;
  /// Quarantines admitted below the coverage floor without escalated
  /// evidence — impossible by construction; the chaos oracles assert 0.
  std::uint64_t coverage_floor_violations = 0;
};

/// Identity of one alert submission. The nonce makes retransmissions of
/// the same alert (channel duplication, ARQ re-sends straddling a
/// failover) idempotent at the base station: a key is counted at most
/// once, so a duplicated packet can never double-increment a counter.
struct AlertKey {
  sim::NodeId reporter = 0;
  sim::NodeId target = 0;
  std::uint64_t nonce = 0;

  friend bool operator==(const AlertKey&, const AlertKey&) = default;
};

struct AlertKeyHash {
  std::size_t operator()(const AlertKey& k) const {
    std::uint64_t x = k.nonce;
    x ^= (static_cast<std::uint64_t>(k.reporter) << 32) | k.target;
    x *= 0x9e3779b97f4a7c15ULL;
    x ^= x >> 29;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 32;
    return static_cast<std::size_t>(x);
  }
};

/// Bounded insertion-ordered set of alert keys: the station's nonce-dedup
/// memory. Unbounded growth here was a real storm-amplified leak — every
/// distinct (reporter, target, nonce) ever submitted stayed resident — so
/// the window keeps only the most recent `capacity` keys and counts what
/// it ages out. Capacity 0 means unbounded.
class DedupWindow {
 public:
  explicit DedupWindow(std::size_t capacity) : capacity_(capacity) {}

  /// Inserts `key`; returns false (and changes nothing) if it is already
  /// in the window. May evict the oldest key to stay within capacity.
  bool insert(const AlertKey& key);

  bool contains(const AlertKey& key) const { return set_.contains(key); }

  std::size_t size() const { return set_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t evictions() const { return evictions_; }

  /// Window contents, oldest first (the serializable image).
  std::vector<AlertKey> snapshot() const;
  /// Replaces the contents with `keys` (given oldest first), re-applying
  /// the capacity bound. Does not reset the eviction count.
  void restore(const std::vector<AlertKey>& keys);

 private:
  std::size_t capacity_;
  std::deque<AlertKey> order_;
  std::unordered_set<AlertKey, AlertKeyHash> set_;
  std::uint64_t evictions_ = 0;
};

/// Serializable image of a base station — what a snapshot persists and
/// what a standby imports before replaying the WAL tail.
struct BaseStationState {
  std::unordered_map<sim::NodeId, std::uint32_t> alert_counter;
  std::unordered_map<sim::NodeId, std::uint32_t> report_counter;
  std::vector<sim::NodeId> revocation_order;
  /// Dedup-window contents, oldest first.
  std::vector<AlertKey> seen;
  std::uint64_t auto_nonce = 0;
  BaseStationStats stats;
  /// Per-beacon lifecycle records, in first-suspicion order (empty while
  /// the lifecycle is disabled).
  std::vector<std::pair<sim::NodeId, BeaconLifecycleState>> lifecycle;
};

class BaseStation {
 public:
  explicit BaseStation(RevocationConfig config);

  const RevocationConfig& config() const { return config_; }

  /// Processes one alert (paper §3.1 algorithm). This overload stamps the
  /// alert with a fresh internal nonce, so every call counts as a distinct
  /// submission — the pre-nonce behaviour.
  AlertDisposition process_alert(sim::NodeId reporter, sim::NodeId target);

  /// Processes one alert identified by (reporter, target, nonce). A key
  /// already counted is ignored as a duplicate — retransmitted packets are
  /// idempotent. Timestamped at sim time 0 (lifecycle decay needs real
  /// times; prefer the timed overload when the lifecycle is enabled).
  AlertDisposition process_alert(sim::NodeId reporter, sim::NodeId target,
                                 std::uint64_t nonce);

  /// Timed overload: identical to the above when the lifecycle is
  /// disabled; with it enabled, `now` drives evidence decay and the
  /// quarantine / exoneration / revocation transitions.
  AlertDisposition process_alert(sim::NodeId reporter, sim::NodeId target,
                                 std::uint64_t nonce, sim::SimTime now);

  /// Registers a beacon's deployed position with the lifecycle layer
  /// (coverage-guard census + reporter plausibility). Config-derived, so
  /// a restore re-registers the same roster; no-op while disabled.
  void register_beacon(sim::NodeId id, util::Vec2 position);

  bool is_revoked(sim::NodeId beacon) const {
    return revoked_.contains(beacon);
  }

  /// Lifecycle queries (all trivially false/clear while disabled).
  bool is_quarantined(sim::NodeId beacon, sim::SimTime now) const {
    return config_.lifecycle.enabled && lifecycle_.is_quarantined(beacon, now);
  }
  /// Usable for localization: neither revoked nor quarantined.
  bool usable(sim::NodeId beacon, sim::SimTime now) const {
    return !revoked_.contains(beacon) &&
           (!config_.lifecycle.enabled || lifecycle_.usable(beacon, now));
  }
  double evidence(sim::NodeId beacon, sim::SimTime now) const {
    return config_.lifecycle.enabled ? lifecycle_.evidence(beacon, now) : 0.0;
  }
  LifecyclePhase lifecycle_phase(sim::NodeId beacon, sim::SimTime now) const;
  const LifecycleTracker& lifecycle() const { return lifecycle_; }

  /// End-of-trial sweep: materializes pending exonerations (trace +
  /// stats) and emits one coverage.usable_beacons census per occupied
  /// deployment cell. No-op while the lifecycle is disabled.
  void settle(sim::SimTime now);
  const std::vector<sim::NodeId>& revocation_order() const {
    return revocation_order_;
  }
  std::size_t revoked_count() const { return revoked_.size(); }

  std::uint32_t alert_counter(sim::NodeId beacon) const;
  std::uint32_t report_counter(sim::NodeId beacon) const;

  const BaseStationStats& stats() const { return stats_; }
  /// Resident dedup keys (bounded by RevocationConfig::dedup_window).
  std::size_t dedup_footprint() const { return seen_.size(); }

  /// Installs the event tracer (off by default). Emits one `bs.alert`
  /// record per processed alert (disposition + post-state counters) and a
  /// `bs.revoke` record when a counter crosses tau2.
  void set_tracer(obs::Tracer tracer) { trace_ = std::move(tracer); }

  /// Copies the station's durable image (counters, revocation list, seen
  /// alert keys, stats) for a snapshot.
  BaseStationState export_state() const;

  /// Replaces the station's state with `state` (restore from snapshot).
  void import_state(const BaseStationState& state);

 private:
  AlertDisposition process_alert_impl(sim::NodeId reporter, sim::NodeId target,
                                      std::uint64_t nonce, sim::SimTime now,
                                      LifecycleOutcome* lifecycle_outcome);
  void emit_lifecycle_trace(sim::NodeId target,
                            const LifecycleOutcome& outcome);

  RevocationConfig config_;
  obs::Tracer trace_;
  std::unordered_map<sim::NodeId, std::uint32_t> alert_counter_;
  std::unordered_map<sim::NodeId, std::uint32_t> report_counter_;
  std::unordered_set<sim::NodeId> revoked_;
  std::vector<sim::NodeId> revocation_order_;
  DedupWindow seen_;
  /// Nonce source for the nonce-less overload; the high bit keeps the
  /// internal namespace disjoint from caller-assigned nonces.
  std::uint64_t auto_nonce_ = 0;
  BaseStationStats stats_;
  LifecycleTracker lifecycle_;
};

}  // namespace sld::revocation
