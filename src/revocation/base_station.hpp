// The base-station revocation scheme (paper §3.1).
//
// Per beacon node the base station keeps
//   * an alert counter  — "records the suspiciousness of this beacon node";
//   * a report counter  — "the number of alerts this node reported and
//                          accepted by the base station".
// An incoming alert (reporter, target) is accepted iff the reporter's
// report counter has not exceeded tau1 AND the target is not yet revoked;
// acceptance increments both counters, and the target is revoked once its
// alert counter exceeds tau2. Alerts from already-revoked reporters are
// still accepted (subject to the same quota), which stops malicious nodes
// from flooding alerts to get benign nodes revoked "before they can report
// any alert".
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "obs/trace.hpp"
#include "sim/message.hpp"

namespace sld::revocation {

struct RevocationConfig {
  /// tau1: maximum report-counter value at which an alert is still
  /// accepted (so each reporter gets tau1 + 1 accepted alerts).
  std::uint32_t report_quota = 10;
  /// tau2: a target is revoked once its alert counter *exceeds* this
  /// (i.e. at tau2 + 1 accepted alerts).
  std::uint32_t alert_threshold = 2;
};

enum class AlertDisposition {
  kAccepted,               // counters incremented, target not (yet) revoked
  kAcceptedAndRevoked,     // this alert pushed the target over tau2
  kIgnoredReporterQuota,   // reporter's report counter exceeded tau1
  kIgnoredTargetRevoked,   // target was already revoked
};

struct BaseStationStats {
  std::uint64_t alerts_received = 0;
  std::uint64_t alerts_accepted = 0;
  std::uint64_t alerts_ignored_quota = 0;
  std::uint64_t alerts_ignored_revoked = 0;
  std::uint64_t revocations = 0;
};

class BaseStation {
 public:
  explicit BaseStation(RevocationConfig config);

  const RevocationConfig& config() const { return config_; }

  /// Processes one alert (paper §3.1 algorithm).
  AlertDisposition process_alert(sim::NodeId reporter, sim::NodeId target);

  bool is_revoked(sim::NodeId beacon) const {
    return revoked_.contains(beacon);
  }
  const std::vector<sim::NodeId>& revocation_order() const {
    return revocation_order_;
  }
  std::size_t revoked_count() const { return revoked_.size(); }

  std::uint32_t alert_counter(sim::NodeId beacon) const;
  std::uint32_t report_counter(sim::NodeId beacon) const;

  const BaseStationStats& stats() const { return stats_; }

  /// Installs the event tracer (off by default). Emits one `bs.alert`
  /// record per processed alert (disposition + post-state counters) and a
  /// `bs.revoke` record when a counter crosses tau2.
  void set_tracer(obs::Tracer tracer) { trace_ = std::move(tracer); }

 private:
  AlertDisposition process_alert_impl(sim::NodeId reporter,
                                      sim::NodeId target);

  RevocationConfig config_;
  obs::Tracer trace_;
  std::unordered_map<sim::NodeId, std::uint32_t> alert_counter_;
  std::unordered_map<sim::NodeId, std::uint32_t> report_counter_;
  std::unordered_set<sim::NodeId> revoked_;
  std::vector<sim::NodeId> revocation_order_;
  BaseStationStats stats_;
};

}  // namespace sld::revocation
