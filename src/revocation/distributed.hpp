// Distributed revocation — the paper's §6 future-work direction
// ("investigate distributed algorithms to revoke malicious beacon nodes
// without using the base station"), built here as an extension.
//
// Instead of reporting to the base station, a detecting beacon locally
// broadcasts a signed vote (reporter, target). Every listener maintains
// its own blacklist: a target is blacklisted once votes from at least
// `vote_threshold` *distinct* reporters have been heard (distinctness is
// what stops a single malicious voter from flooding), and each reporter
// may accuse at most `per_reporter_target_quota` distinct targets at any
// one listener (the local analogue of the base station's tau1 quota).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/message.hpp"

namespace sld::revocation {

struct DistributedConfig {
  /// Distinct reporters required to blacklist a target (local tau2 + 1).
  std::uint32_t vote_threshold = 3;
  /// Max distinct targets one reporter may accuse at a listener (tau1 + 1).
  std::uint32_t per_reporter_target_quota = 11;
};

/// One listener's vote-aggregation state.
class VoteAggregator {
 public:
  explicit VoteAggregator(DistributedConfig config);

  /// Processes a vote heard over the air, in arrival order. Returns true
  /// if this vote was counted (not suppressed by the quota or duplicate).
  bool on_vote(sim::NodeId reporter, sim::NodeId target);

  bool is_blacklisted(sim::NodeId target) const {
    return blacklist_.contains(target);
  }
  const std::unordered_set<sim::NodeId>& blacklist() const {
    return blacklist_;
  }

  std::uint32_t distinct_reporters_against(sim::NodeId target) const;

  struct Stats {
    std::uint64_t votes_heard = 0;
    std::uint64_t votes_counted = 0;
    std::uint64_t votes_duplicate = 0;
    std::uint64_t votes_quota_suppressed = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  DistributedConfig config_;
  // target -> reporters that voted against it (deduplicated).
  std::unordered_map<sim::NodeId, std::unordered_set<sim::NodeId>> votes_;
  // reporter -> targets it has accused here (for the quota).
  std::unordered_map<sim::NodeId, std::unordered_set<sim::NodeId>> accused_;
  std::unordered_set<sim::NodeId> blacklist_;
  Stats stats_;
};

/// Convenience: the blacklist one listener derives from the votes it heard
/// (in order).
std::unordered_set<sim::NodeId> local_blacklist(
    const std::vector<sim::AlertPayload>& votes_heard,
    const DistributedConfig& config);

}  // namespace sld::revocation
