// Admission control for the base station's alert ingestion path.
//
// The paper's revocation scheme assumes the base station can absorb every
// alert, but colluding reporters are exactly the adversary the threat
// model posits: an alert storm is both a DoS on revocation and an
// amplification of false accusations. The admission layer sits in front
// of the shard queues (shard.hpp) and applies three deterministic gates:
//
//   * per-reporter token buckets — a flooder's sustained rate is capped
//     while a benign reporter's handful of alerts always has tokens;
//   * a windowed (reporter, target) pair rule — a reporter's repeated
//     accusations against one target carry no new evidence (honest nodes
//     already self-limit to one, paper §3.1), so repeats are absorbed
//     cheaply and a colluder contributes at most one accepted alert per
//     target, which bounds the harm a storm of forged alerts can do;
//   * a circuit breaker over the WAL device — sustained flush stall trips
//     ingestion into counting-without-durability instead of blocking.
//
// The breaker is an explicit state machine
//
//   closed -> shedding   (a queue-full shed happened recently)
//   closed -> degraded   (WAL stalled for >= breaker_trip_ns)
//   degraded -> recovering (stall cleared; deferred records re-journaled)
//   recovering -> closed  (cooldown elapsed)
//
// and, like everything in the simulator, a pure function of configured
// fault windows and observed event times — no wall clock, no randomness.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "revocation/base_station.hpp"
#include "revocation/durable_store.hpp"
#include "sim/message.hpp"
#include "sim/time.hpp"

namespace sld::revocation {

enum class BreakerState {
  kClosed,      // normal operation
  kShedding,    // queue pressure: first-sight alerts are being dropped
  kDegraded,    // WAL stalled: counting without durability
  kRecovering,  // stall cleared: deferred records journaled, cooling down
};

const char* breaker_state_name(BreakerState state);

struct AdmissionConfig {
  /// Master switch. Disabled means every alert is admitted untouched —
  /// the pre-admission behaviour, bit-for-bit.
  bool enabled = false;
  /// Sustained per-reporter alert rate (tokens/second). 0 disables the
  /// rate gate.
  double reporter_rate_per_s = 5.0;
  /// Token-bucket depth: alerts a reporter may burst above the rate.
  double reporter_burst = 8.0;
  /// Remembered (reporter, target) pairs for the one-accusation-per-pair
  /// rule, windowed like the nonce dedup. 0 disables the rule.
  std::size_t pair_window = 1u << 16;
  /// A target whose alert counter has reached this is "suspected": its
  /// alerts ride the priority lane and are never shed.
  std::uint32_t suspect_after = 1;
  /// WAL stall duration that trips the breaker into degraded mode.
  sim::SimTime breaker_trip_ns = 500 * sim::kMillisecond;
  /// Time in recovering before the breaker re-closes.
  sim::SimTime breaker_cooldown_ns = 2 * sim::kSecond;
  /// A shed event holds the breaker in shedding for this long.
  sim::SimTime shed_reopen_ns = 1 * sim::kSecond;
};

/// The deterministic admission state: token buckets, the pair window and
/// the breaker. Owned and driven by the IngestPipeline.
class AdmissionController {
 public:
  enum class Decision {
    kAdmit,          // pass on to the shard queues
    kRateLimited,    // reporter out of tokens
    kDuplicatePair,  // (reporter, target) already accused in the window
  };

  /// `stall_windows` is the WAL device's fault schedule (the breaker's
  /// degraded intervals are precomputed from it).
  AdmissionController(const AdmissionConfig& config,
                      const std::vector<StallWindow>& stall_windows);

  const AdmissionConfig& config() const { return config_; }

  /// Applies the pair rule and the token-bucket gate (in that order: a
  /// repeat accusation is absorbed without spending a token).
  Decision admit(sim::NodeId reporter, sim::NodeId target, sim::SimTime now);

  /// Records that an admitted alert was actually enqueued, committing
  /// its (reporter, target) pair to the window.
  void remember_pair(sim::NodeId reporter, sim::NodeId target);

  /// Records a queue-full shed; holds the breaker in shedding for
  /// `shed_reopen_ns`.
  void note_shed(sim::SimTime now);

  /// Breaker state at `now` — a pure function of the stall schedule and
  /// the last shed time, so it can be queried freely.
  BreakerState state(sim::SimTime now) const;

  std::uint64_t pair_evictions() const { return pairs_.evictions(); }

 private:
  struct Bucket {
    double tokens = 0;
    sim::SimTime last_refill = 0;
  };

  AdmissionConfig config_;
  /// [start, end) intervals in which the breaker reads degraded.
  std::vector<StallWindow> degraded_;
  std::unordered_map<sim::NodeId, Bucket> buckets_;
  DedupWindow pairs_;
  sim::SimTime last_shed_ = 0;
  bool any_shed_ = false;
};

}  // namespace sld::revocation
