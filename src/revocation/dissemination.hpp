// Revocation dissemination. The paper assumes "some standard fault
// tolerance techniques (e.g., retransmission) so that the revocation
// message from the base station can reach most of sensor nodes". We model
// the *outcome*: each (sensor, revocation) pair independently learns the
// revocation with probability `reach_probability` (1.0 by default, the
// paper's working assumption). The Bernoulli draw is a deterministic keyed
// hash, so whether a given sensor heard a given revocation is stable across
// queries within a trial.
#pragma once

#include <cstdint>
#include <utility>

#include "crypto/siphash.hpp"
#include "obs/trace.hpp"
#include "sim/message.hpp"

namespace sld::revocation {

class DisseminationModel {
 public:
  DisseminationModel(double reach_probability, std::uint64_t seed);

  double reach_probability() const { return reach_probability_; }

  /// True if `sensor` has learnt that `revoked_beacon` was revoked.
  bool sensor_knows(sim::NodeId sensor, sim::NodeId revoked_beacon) const;

  /// Installs the event tracer (off by default). Emits a `dissem.miss`
  /// record whenever a sensor turns out not to have heard a revocation.
  void set_tracer(obs::Tracer tracer) { trace_ = std::move(tracer); }

 private:
  double reach_probability_;
  crypto::Key128 key_{};
  obs::Tracer trace_;
};

}  // namespace sld::revocation
