#include "revocation/distributed.hpp"

namespace sld::revocation {

VoteAggregator::VoteAggregator(DistributedConfig config) : config_(config) {}

bool VoteAggregator::on_vote(sim::NodeId reporter, sim::NodeId target) {
  ++stats_.votes_heard;

  auto& targets_of_reporter = accused_[reporter];
  const bool already_accused = targets_of_reporter.contains(target);
  if (!already_accused &&
      targets_of_reporter.size() >= config_.per_reporter_target_quota) {
    ++stats_.votes_quota_suppressed;
    return false;
  }

  auto& reporters = votes_[target];
  if (!reporters.insert(reporter).second) {
    ++stats_.votes_duplicate;
    return false;
  }
  targets_of_reporter.insert(target);
  ++stats_.votes_counted;

  if (reporters.size() >= config_.vote_threshold) blacklist_.insert(target);
  return true;
}

std::uint32_t VoteAggregator::distinct_reporters_against(
    sim::NodeId target) const {
  const auto it = votes_.find(target);
  return it == votes_.end()
             ? 0
             : static_cast<std::uint32_t>(it->second.size());
}

std::unordered_set<sim::NodeId> local_blacklist(
    const std::vector<sim::AlertPayload>& votes_heard,
    const DistributedConfig& config) {
  VoteAggregator agg(config);
  for (const auto& v : votes_heard) agg.on_vote(v.reporter, v.target);
  return agg.blacklist();
}

}  // namespace sld::revocation
