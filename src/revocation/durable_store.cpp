#include "revocation/durable_store.hpp"

#include <stdexcept>
#include <utility>

namespace sld::revocation {

DurableStore::DurableStore(DurableConfig config) : config_(std::move(config)) {
  if (config_.fsync_every_records == 0)
    throw std::invalid_argument("DurableStore: fsync interval must be >= 1");
  if (config_.snapshot_every_records == 0)
    throw std::invalid_argument("DurableStore: snapshot interval must be >= 1");
  sim::SimTime prev_end = 0;
  for (const StallWindow& w : config_.stall_windows) {
    if (w.end <= w.start)
      throw std::invalid_argument("DurableStore: empty stall window");
    if (w.start < prev_end)
      throw std::invalid_argument(
          "DurableStore: stall windows must be sorted and non-overlapping");
    prev_end = w.end;
  }
}

bool DurableStore::append(const AlertKey& record, sim::SimTime at,
                          const BaseStation& station) {
  if (!config_.enabled) return false;
  pending_.push_back(WalRecord{record, at});
  ++stats_.appends;
  if (stalled_) {
    // The device cannot complete a flush right now: the record rides the
    // pending buffer past the fsync cadence and widens the loss window.
    ++stats_.stalled_appends;
    return false;
  }
  if (pending_.size() < config_.fsync_every_records) return false;
  flush();
  maybe_snapshot(station);
  return true;
}

void DurableStore::advance(sim::SimTime now) {
  if (!config_.enabled || config_.stall_windows.empty()) return;
  last_advance_ = now;
  const auto& windows = config_.stall_windows;
  while (next_stall_ < windows.size() && windows[next_stall_].end <= now)
    ++next_stall_;
  const bool in_window =
      next_stall_ < windows.size() && windows[next_stall_].start <= now;
  if (stalled_ && !in_window) {
    // Stall cleared: catch up on the backlog the cadence would already
    // have flushed (snapshot compaction waits for the next append).
    stalled_ = false;
    if (pending_.size() >= config_.fsync_every_records) flush();
  }
  stalled_ = in_window;
}

void DurableStore::note_lost(const AlertKey& record) {
  ++lost_alerts_[record.target];
  ++stats_.deferred_lost;
}

void DurableStore::flush() {
  if (!config_.enabled || stalled_ || pending_.empty()) return;
  for (const WalRecord& r : pending_) {
    tail_.push_back(r);
    ++durable_alerts_[r.key.target];
  }
  pending_.clear();
  ++stats_.flushes;
}

void DurableStore::drop_pending() {
  if (pending_.empty()) return;
  for (const WalRecord& r : pending_) ++lost_alerts_[r.key.target];
  stats_.records_lost += pending_.size();
  pending_.clear();
}

void DurableStore::maybe_snapshot(const BaseStation& station) {
  if (!snapshot_gate_open_) return;
  if (tail_.size() <= config_.snapshot_every_records) return;
  // Right after a flush the station state covers exactly (snapshot + tail),
  // so its image can replace both.
  snapshot_ = station.export_state();
  tail_.clear();
  ++stats_.snapshots;
}

BaseStation DurableStore::restore(const RevocationConfig& config) const {
  BaseStation station(config);
  if (!config_.enabled) return station;
  // Roster first: config-derived geometry the lifecycle needs before any
  // replayed alert can attempt a quarantine.
  for (const auto& [id, pos] : roster_) station.register_beacon(id, pos);
  if (snapshot_.has_value()) station.import_state(*snapshot_);
  // The WAL tail holds only accepted records in accept order, so replaying
  // them through the normal timed path reproduces counters, revocations,
  // and lifecycle evidence exactly (and the nonce dedup makes a
  // re-delivered copy a no-op).
  for (const WalRecord& r : tail_)
    station.process_alert(r.key.reporter, r.key.target, r.key.nonce, r.at);
  return station;
}

std::uint32_t DurableStore::durable_alerts(sim::NodeId target) const {
  const auto it = durable_alerts_.find(target);
  return it == durable_alerts_.end() ? 0 : it->second;
}

std::uint32_t DurableStore::lost_alerts(sim::NodeId target) const {
  const auto it = lost_alerts_.find(target);
  return it == lost_alerts_.end() ? 0 : it->second;
}

}  // namespace sld::revocation
