#include "revocation/shard.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "check/invariant.hpp"

namespace sld::revocation {

IngestPipeline::IngestPipeline(IngestConfig config, BaseStationCluster& cluster)
    : config_(config),
      cluster_(cluster),
      admission_(config.admission,
                 cluster.failover_config().durable.stall_windows) {
  if (config_.shard.count == 0)
    throw std::invalid_argument("Ingest: shard count must be >= 1");
  if (config_.shard.queue_capacity == 0)
    throw std::invalid_argument("Ingest: queue capacity must be >= 1");
  if (config_.shard.service_time_ns < 0)
    throw std::invalid_argument("Ingest: service time must be >= 0");
  if (enabled()) shards_.resize(config_.shard.count);
}

void IngestPipeline::set_instruments(Instruments instruments) {
  instruments_ = std::move(instruments);
  // Gauges keep their last-written value, and a shared registry can carry
  // them over from a previous trial's pipeline. Sync every gauge to THIS
  // pipeline's state right away, so the first telemetry sample after trial
  // setup can never read stale queue depths or breaker state.
  update_gauges();
  if (instruments_.breaker_state != nullptr)
    instruments_.breaker_state->set(
        static_cast<double>(static_cast<int>(last_breaker_)));
}

std::size_t IngestPipeline::queue_depth() const {
  std::size_t n = 0;
  for (const Shard& sh : shards_) n += sh.queue.size();
  return n;
}

void IngestPipeline::trace_shed(const char* reason, sim::NodeId reporter,
                                sim::NodeId target, std::size_t shard_index) {
  if (!trace_.on()) return;
  trace_.emit(trace_.event("bs.shed")
                  .f("reporter", reporter)
                  .f("target", target)
                  .f("reason", reason)
                  .f("shard", static_cast<std::uint64_t>(shard_index)));
}

IngestResult IngestPipeline::submit(sim::SimTime now, sim::NodeId reporter,
                                    sim::NodeId target, std::uint64_t nonce) {
  if (!enabled()) {
    IngestResult r;
    r.kind = IngestResult::Kind::kBypass;
    r.disposition = cluster_.process_alert(now, reporter, target, nonce);
    return r;
  }

  advance(now);
  ++stats_.submitted;

  switch (admission_.admit(reporter, target, now)) {
    case AdmissionController::Decision::kDuplicatePair:
      ++stats_.pair_duplicates;
      return {IngestResult::Kind::kAbsorbed, AlertDisposition::kAccepted};
    case AdmissionController::Decision::kRateLimited:
      ++stats_.rate_limited;
      if (instruments_.rate_limited != nullptr) instruments_.rate_limited->inc();
      trace_shed("rate_limited", reporter, target, target % shards_.size());
      return {IngestResult::Kind::kRateLimited, AlertDisposition::kAccepted};
    case AdmissionController::Decision::kAdmit:
      break;
  }

  const std::size_t shard_index = target % shards_.size();
  Shard& shard = shards_[shard_index];
  // Quarantined targets keep the never-shed priority: their corroboration
  // evidence is exactly what the lifecycle needs to resolve the case.
  const bool suspected =
      config_.admission.enabled &&
      (cluster_.alert_counter(target) >= config_.admission.suspect_after ||
       cluster_.is_quarantined(target, now));
  if (shard.queue.size() >= config_.shard.queue_capacity) {
    if (!suspected) {
      // Priority-aware LIFO shed: the newest (unacked) first-sight arrival
      // is the one dropped; its reporter's ARQ retries once load eases.
      ++stats_.shed;
      if (instruments_.shed != nullptr) instruments_.shed->inc();
      admission_.note_shed(now);
      trace_shed("queue_full", reporter, target, shard_index);
      breaker_step(now);  // the shed may have opened the shedding state
      return {IngestResult::Kind::kShed, AlertDisposition::kAccepted};
    }
    // Alerts against suspected targets are evidence the scheme must not
    // lose to load: they ride past the bound.
    ++stats_.priority_admits;
  }

  Entry entry;
  entry.key = AlertKey{reporter, target, nonce};
  entry.enqueued_at = now;
  shard.busy_until =
      std::max(shard.busy_until, now) + config_.shard.service_time_ns;
  entry.commit_at = shard.busy_until;
  entry.first_sight = !suspected;
  shard.queue.push_back(entry);
  admission_.remember_pair(reporter, target);
  ++stats_.accepted;
  if (instruments_.accepted != nullptr) instruments_.accepted->inc();
  update_gauges();
  return {IngestResult::Kind::kEnqueued, AlertDisposition::kAccepted};
}

void IngestPipeline::advance(sim::SimTime now) {
  cluster_.advance(now);
  if (!enabled()) return;
  on_transitions();
  breaker_step(now);
  commit_due(now, /*force=*/false);
  update_gauges();
  SLD_INVARIANT(stats_.submitted == stats_.accepted + stats_.rate_limited +
                                        stats_.shed + stats_.pair_duplicates,
                "ingest accounting: submitted="
                    << stats_.submitted << " accepted=" << stats_.accepted
                    << " rate_limited=" << stats_.rate_limited
                    << " shed=" << stats_.shed
                    << " pair_dup=" << stats_.pair_duplicates);
  SLD_INVARIANT(stats_.accepted == stats_.committed + queue_depth(),
                "ingest queue conservation: accepted="
                    << stats_.accepted << " committed=" << stats_.committed
                    << " queued=" << queue_depth());
  SLD_INVARIANT(stats_.deferred == stats_.deferred_journaled +
                                       stats_.deferred_lost + deferred_.size(),
                "deferred conservation: deferred="
                    << stats_.deferred
                    << " journaled=" << stats_.deferred_journaled
                    << " lost=" << stats_.deferred_lost
                    << " outstanding=" << deferred_.size());
}

void IngestPipeline::drain(sim::SimTime now) {
  advance(now);
  if (!enabled()) return;
  commit_due(now, /*force=*/true);
  journal_deferred();
  update_gauges();
}

void IngestPipeline::on_transitions() {
  const std::uint64_t crashes = cluster_.stats().active_crashes;
  if (crashes == seen_crashes_) return;
  seen_crashes_ = crashes;
  // The active station's volatile state died, and the deferred records
  // only existed there: charge them to the lost ledger so the counter
  // identity (counted == durable + lost) keeps holding.
  for (const WalRecord& r : deferred_) cluster_.note_deferred_lost(r.key);
  stats_.deferred_lost += deferred_.size();
  deferred_.clear();
  cluster_.set_snapshot_gate(true);
}

void IngestPipeline::breaker_step(sim::SimTime now) {
  if (!config_.admission.enabled) return;
  const BreakerState state = admission_.state(now);
  if (state != last_breaker_) {
    ++stats_.breaker_transitions;
    if (instruments_.breaker_state != nullptr)
      instruments_.breaker_state->set(
          static_cast<double>(static_cast<int>(state)));
    if (trace_.on()) {
      trace_.emit(trace_.event("bs.breaker")
                      .f("from", breaker_state_name(last_breaker_))
                      .f("to", breaker_state_name(state)));
    }
    last_breaker_ = state;
  }
  if (last_breaker_ != BreakerState::kDegraded) journal_deferred();
}

void IngestPipeline::journal_deferred() {
  if (deferred_.empty() || !cluster_.in_service()) return;
  // Deferred keys are in accept order and go in ahead of any newer
  // commit, so WAL replay order stays identical to accept order.
  // The gate stays closed across the loop: a mid-loop flush must not cut a
  // snapshot while later keys are still counted-but-unjournaled.
  for (const WalRecord& r : deferred_) cluster_.journal(r);
  stats_.deferred_journaled += deferred_.size();
  deferred_.clear();
  cluster_.set_snapshot_gate(true);
}

void IngestPipeline::commit_due(sim::SimTime now, bool force) {
  if (!cluster_.in_service()) {
    // Entries stay queued across the outage; the first in-service advance
    // drains them into the successor (the takeover reconcile).
    if (!blocked_) {
      for (const Shard& sh : shards_) {
        if (!sh.queue.empty() && sh.queue.front().commit_at <= now) {
          blocked_ = true;
          break;
        }
      }
    }
    return;
  }
  bool reconciling = false;
  if (blocked_) {
    blocked_ = false;
    service_resumed_ = now;
    reconciling = true;
  }
  const bool degraded = config_.admission.enabled &&
                        admission_.state(now) == BreakerState::kDegraded;

  std::vector<std::uint32_t> batch(shards_.size(), 0);
  for (;;) {
    // Global commit order: earliest due entry across shards, shard index
    // breaking ties — deterministic whatever the queue shapes are.
    std::size_t best = shards_.size();
    sim::SimTime best_t = std::numeric_limits<sim::SimTime>::max();
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      const Shard& sh = shards_[i];
      if (sh.queue.empty()) continue;
      const sim::SimTime t = sh.queue.front().commit_at;
      if (!force && t > now) continue;
      if (t < best_t) {
        best_t = t;
        best = i;
      }
    }
    if (best == shards_.size()) break;
    commit_one(best, now, degraded, reconciling);
    ++batch[best];
  }

  if (trace_.on()) {
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      if (batch[i] == 0) continue;
      trace_.emit(trace_.event("bs.shard_commit")
                      .f("shard", static_cast<std::uint64_t>(i))
                      .f("batch", batch[i])
                      .f("queue_depth", static_cast<std::uint64_t>(
                                            shards_[i].queue.size())));
    }
  }
}

void IngestPipeline::commit_one(std::size_t shard_index, sim::SimTime now,
                                bool degraded, bool reconciling) {
  Shard& shard = shards_[shard_index];
  Entry entry = shard.queue.front();
  shard.queue.pop_front();
  // The model-time moment this entry really committed: its service-model
  // slot, pushed back to the service-resume time if it sat out an outage.
  const sim::SimTime committed_at = std::max(entry.commit_at, service_resumed_);
  const AlertDisposition disposition = cluster_.process_alert(
      now, entry.key.reporter, entry.key.target, entry.key.nonce, !degraded);
  const bool counted = disposition == AlertDisposition::kAccepted ||
                       disposition == AlertDisposition::kAcceptedAndRevoked;
  if (counted && degraded) {
    // Stamped with the cluster-observe time: a later journal replay must
    // decay lifecycle evidence exactly as the live path did.
    deferred_.push_back(WalRecord{entry.key, now});
    cluster_.set_snapshot_gate(false);
    ++stats_.deferred;
    if (instruments_.deferred != nullptr) instruments_.deferred->inc();
  }
  ++stats_.committed;
  if (reconciling) ++stats_.reconciled;
  if (instruments_.latency_ms != nullptr) {
    instruments_.latency_ms->observe(
        static_cast<double>(committed_at - entry.enqueued_at) /
        static_cast<double>(sim::kMillisecond));
  }
  if (commit_hook_) {
    commit_hook_(entry.key.reporter, entry.key.target, disposition,
                 entry.enqueued_at, committed_at);
  }
}

void IngestPipeline::update_gauges() {
  for (std::size_t i = 0;
       i < shards_.size() && i < instruments_.queue_depth.size(); ++i) {
    if (instruments_.queue_depth[i] != nullptr)
      instruments_.queue_depth[i]->set(
          static_cast<double>(shards_[i].queue.size()));
  }
}

}  // namespace sld::revocation
