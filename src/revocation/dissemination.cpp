#include "revocation/dissemination.hpp"

#include <stdexcept>

namespace sld::revocation {

DisseminationModel::DisseminationModel(double reach_probability,
                                       std::uint64_t seed)
    : reach_probability_(reach_probability) {
  if (reach_probability_ < 0.0 || reach_probability_ > 1.0)
    throw std::invalid_argument(
        "DisseminationModel: probability outside [0, 1]");
  for (int i = 0; i < 8; ++i) {
    key_[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(seed >> (8 * i));
    key_[static_cast<std::size_t>(i + 8)] = static_cast<std::uint8_t>(
        (seed ^ 0x5bd1e995978e3dbdULL) >> (8 * i));
  }
}

bool DisseminationModel::sensor_knows(sim::NodeId sensor,
                                      sim::NodeId revoked_beacon) const {
  bool knows = true;
  if (reach_probability_ >= 1.0) {
    knows = true;
  } else if (reach_probability_ <= 0.0) {
    knows = false;
  } else {
    const std::uint64_t h = crypto::siphash24_u64(
        key_, (static_cast<std::uint64_t>(sensor) << 32) |
                  static_cast<std::uint64_t>(revoked_beacon));
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    knows = u < reach_probability_;
  }
  if (!knows && trace_.on()) {
    trace_.emit(trace_.event("dissem.miss")
                    .f("sensor", sensor)
                    .f("target", revoked_beacon));
  }
  return knows;
}

}  // namespace sld::revocation
