#include "revocation/failover.hpp"

#include <stdexcept>
#include <utility>

#include "check/invariant.hpp"

namespace sld::revocation {

namespace {
/// Time of the last heartbeat at or before `t` (heartbeats start at 0).
sim::SimTime last_heartbeat_before(sim::SimTime t, sim::SimTime interval) {
  return (t / interval) * interval;
}
}  // namespace

BaseStationCluster::BaseStationCluster(RevocationConfig revocation,
                                       FailoverConfig failover)
    : revocation_(revocation),
      failover_(std::move(failover)),
      wal_(failover_.durable) {
  if (failover_.heartbeat_interval_ns <= 0)
    throw std::invalid_argument("Failover: heartbeat interval must be > 0");
  if (failover_.takeover_timeout_ns <= 0)
    throw std::invalid_argument("Failover: takeover timeout must be > 0");
  sim::SimTime prev_end = 0;
  for (const auto& o : failover_.primary_outages) {
    if (o.end <= o.start)
      throw std::invalid_argument("Failover: empty outage window");
    if (o.start < prev_end)
      throw std::invalid_argument(
          "Failover: outage windows must be sorted and non-overlapping");
    prev_end = o.end;
  }

  stations_.emplace_back(revocation_);
  if (failover_.standby_enabled) stations_.emplace_back(revocation_);

  for (std::size_t i = 0; i < failover_.primary_outages.size(); ++i) {
    const OutageWindow& o = failover_.primary_outages[i];
    transitions_.push_back({o.start, Transition::Kind::kPrimaryDown, i});
    if (failover_.standby_enabled) {
      const sim::SimTime takeover =
          last_heartbeat_before(o.start, failover_.heartbeat_interval_ns) +
          failover_.takeover_timeout_ns;
      if (takeover < o.end)
        transitions_.push_back({takeover, Transition::Kind::kTakeover, i});
    }
    transitions_.push_back({o.end, Transition::Kind::kPrimaryBack, i});
  }
}

void BaseStationCluster::set_tracer(obs::Tracer tracer) {
  trace_ = std::move(tracer);
  for (BaseStation& s : stations_) s.set_tracer(trace_);
}

void BaseStationCluster::set_beacon_roster(
    const std::vector<std::pair<sim::NodeId, util::Vec2>>& roster) {
  for (BaseStation& s : stations_)
    for (const auto& [id, pos] : roster) s.register_beacon(id, pos);
  wal_.set_beacon_roster(roster);
}

void BaseStationCluster::advance(sim::SimTime now) {
  SLD_INVARIANT(now >= last_advance_,
                "cluster time ran backwards: " << now << " < " << last_advance_);
  last_advance_ = now;
  while (next_transition_ < transitions_.size() &&
         transitions_[next_transition_].t <= now) {
    // The WAL's stall clock must reach each transition before it applies:
    // a stall that clears before a crash flushes first, one that is still
    // open when the crash hits keeps the backlog pending (and lost).
    wal_.advance(transitions_[next_transition_].t);
    apply(transitions_[next_transition_]);
    ++next_transition_;
  }
  wal_.advance(now);
}

void BaseStationCluster::apply(const Transition& tr) {
  const OutageWindow& outage = failover_.primary_outages[tr.outage];
  switch (tr.kind) {
    case Transition::Kind::kPrimaryDown: {
      if (active_ == 0) {
        // The active station's volatile state dies with it: un-flushed WAL
        // records are gone, and what a restart can recover is exactly the
        // durable prefix — so the authority view drops to it immediately.
        wal_.drop_pending();
        stations_[0] = wal_.restore(revocation_);
        stations_[0].set_tracer(trace_);
        service_down_ = true;
        ++cluster_stats_.active_crashes;
      }
      break;
    }
    case Transition::Kind::kTakeover: {
      if (active_ != 0 || !service_down_) break;
      stations_[1] = wal_.restore(revocation_);
      stations_[1].set_tracer(trace_);
      active_ = 1;
      service_down_ = false;
      ++epoch_;
      ++cluster_stats_.failovers;
      if (recovery_hist_ != nullptr)
        recovery_hist_->observe(static_cast<double>(tr.t - outage.start) /
                                static_cast<double>(sim::kMillisecond));
      if (trace_.on())
        trace_.emit(trace_.event("bs.failover")
                        .f("epoch", epoch_)
                        .f("role", "takeover"));
      break;
    }
    case Transition::Kind::kPrimaryBack: {
      if (active_ == 0) {
        // No standby promoted itself: the primary restarts from durable
        // state (already loaded at crash time) and resumes service.
        service_down_ = false;
        ++cluster_stats_.restarts;
        if (recovery_hist_ != nullptr)
          recovery_hist_->observe(static_cast<double>(outage.end -
                                                      outage.start) /
                                  static_cast<double>(sim::kMillisecond));
        if (trace_.on())
          trace_.emit(trace_.event("bs.failover")
                          .f("epoch", epoch_)
                          .f("role", "restart"));
      } else {
        // Split-brain fence: the returned primary sees epoch_ > its own in
        // the alert acks and demotes itself; the standby stays active.
        ++cluster_stats_.fences;
        if (trace_.on())
          trace_.emit(trace_.event("bs.failover")
                          .f("epoch", epoch_)
                          .f("role", "fence"));
      }
      break;
    }
  }
}

bool BaseStationCluster::available(sim::SimTime now) {
  advance(now);
  return !service_down_;
}

AlertDisposition BaseStationCluster::process_alert(
    sim::SimTime now, sim::NodeId reporter, sim::NodeId target,
    std::uint64_t nonce, bool durable) {
  advance(now);
  SLD_INVARIANT(!service_down_,
                "process_alert while no station is available (t=" << now << ")");
  BaseStation& station = stations_[active_];
  const std::uint64_t snapshots_before = wal_.stats().snapshots;
  const AlertDisposition disposition =
      station.process_alert(reporter, target, nonce, now);
  if (disposition == AlertDisposition::kAccepted ||
      disposition == AlertDisposition::kAcceptedAndRevoked) {
    ++accepted_[target];
    if (durable) {
      wal_.append(AlertKey{reporter, target, nonce}, now, station);
      if (trace_.on() && wal_.stats().snapshots > snapshots_before) {
        trace_.emit(trace_.event("bs.snapshot")
                        .f("records", wal_.stats().appends)
                        .f("wal_tail", static_cast<std::uint64_t>(
                                           wal_.tail_records())));
      }
    }
  }
  return disposition;
}

void BaseStationCluster::journal(const WalRecord& record) {
  SLD_INVARIANT(!service_down_,
                "journal() while no station is available");
  wal_.append(record.key, record.at, stations_[active_]);
}

std::uint32_t BaseStationCluster::accepted_distinct(sim::NodeId target) const {
  const auto it = accepted_.find(target);
  return it == accepted_.end() ? 0 : it->second;
}

}  // namespace sld::revocation
