// Deterministic in-sim durable storage for base-station state: a snapshot
// plus write-ahead log.
//
// The paper's §3.1 counters are assumed to live forever; a real base
// station reboots. The DurableStore models the minimal persistence layer
// that makes the scheme survive that: every *accepted* alert is appended
// to a WAL as its (reporter, target, nonce) key, appends become durable
// ("fsynced") every `fsync_every_records` appends, and once the flushed
// tail grows past `snapshot_every_records` it is compacted into a snapshot
// image of the full station state. A crash loses exactly the un-flushed
// suffix — the configurable fsync loss window — and `restore()` rebuilds a
// station by importing the snapshot and replaying the WAL tail through the
// normal (idempotent, nonce-deduplicated) alert path, which reproduces the
// counters, revocation list, and per-reporter quotas exactly.
//
// Everything is in-memory and a pure function of the calls made, so trials
// stay bit-for-bit reproducible.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "revocation/base_station.hpp"
#include "sim/message.hpp"
#include "sim/time.hpp"

namespace sld::revocation {

/// The WAL device cannot complete flushes in [start, end) — an injected
/// fault modelling a saturated or hung storage backend. Appends still
/// land in the pending buffer (and are lost on a crash), they just cannot
/// become durable until the stall clears.
struct StallWindow {
  sim::SimTime start = 0;
  sim::SimTime end = 0;
};

struct DurableConfig {
  /// Master switch. Disabled stores accept appends but retain nothing:
  /// a restart recovers an empty station (the pre-PR behaviour, now
  /// explicit).
  bool enabled = false;
  /// Appends become crash-durable every this-many records (1 = fsync on
  /// every append; larger values model group commit and widen the loss
  /// window).
  std::uint32_t fsync_every_records = 1;
  /// Once the flushed WAL tail exceeds this many records it is compacted
  /// into a snapshot of the full station state.
  std::uint32_t snapshot_every_records = 64;
  /// Flush-stall fault windows (sorted, non-overlapping). Empty by
  /// default: the store never stalls.
  std::vector<StallWindow> stall_windows;
};

/// One WAL entry: the accepted alert's identity plus its accept time.
/// The time matters only to the lifecycle layer (evidence decay is a
/// function of when each alert landed); the paper's permanent scheme
/// replays identically with every timestamp zero.
struct WalRecord {
  AlertKey key;
  sim::SimTime at = 0;

  friend bool operator==(const WalRecord&, const WalRecord&) = default;
};

struct DurableStoreStats {
  std::uint64_t appends = 0;
  std::uint64_t flushes = 0;
  std::uint64_t snapshots = 0;
  /// Un-flushed records discarded by crashes.
  std::uint64_t records_lost = 0;
  /// Appends made while the device was stalled (each widened the crash
  /// loss window beyond the fsync bound).
  std::uint64_t stalled_appends = 0;
  /// Records the ingest pipeline accepted in degraded (non-durable) mode
  /// and then lost to a crash before they could be journaled.
  std::uint64_t deferred_lost = 0;
};

class DurableStore {
 public:
  explicit DurableStore(DurableConfig config);

  const DurableConfig& config() const { return config_; }
  const DurableStoreStats& stats() const { return stats_; }

  /// Appends one accepted alert, stamped with its accept time. Returns
  /// true if the append triggered a flush (records up to and including
  /// this one are now durable). While the device is stalled the record
  /// stays pending regardless of the fsync cadence.
  bool append(const AlertKey& record, sim::SimTime at,
              const BaseStation& station);
  /// Convenience for time-agnostic callers (stamps sim time 0).
  bool append(const AlertKey& record, const BaseStation& station) {
    return append(record, sim::SimTime{0}, station);
  }

  /// Registers the deployment's beacon roster (config-derived, not
  /// state): restore() re-registers it on the fresh station before the
  /// snapshot import and WAL replay, so the lifecycle's coverage guard
  /// and corroboration geometry survive a crash.
  void set_beacon_roster(
      std::vector<std::pair<sim::NodeId, util::Vec2>> roster) {
    roster_ = std::move(roster);
  }

  /// Moves simulated time forward for stall-window bookkeeping. When a
  /// stall clears, a pending backlog at or past the fsync cadence is
  /// flushed immediately. Idempotent; must not run backwards.
  void advance(sim::SimTime now);

  /// True if a stall window covers the last advanced-to time.
  bool stalled() const { return stalled_; }

  /// Forces pending records to durability (e.g. at a clean shutdown).
  /// No-op while stalled.
  void flush();

  /// The active station crashed: the un-flushed suffix is gone.
  void drop_pending();

  /// Accounts one record that was accepted without durability (degraded
  /// mode) and lost to a crash — it was never appended, but it is gone
  /// evidence all the same, so it joins the per-target lost ledger.
  void note_lost(const AlertKey& record);

  /// Rebuilds a station from the snapshot plus WAL-tail replay. The result
  /// reflects exactly the durable prefix of the accepted-alert history.
  BaseStation restore(const RevocationConfig& config) const;

  /// Durable accepted-alert count for `target` (snapshot + flushed tail).
  /// After any restore, the station's alert counter is >= this only if no
  /// quota/revocation rule truncated it — in practice the WAL only ever
  /// contains accepted records, so equality holds; the chaos oracles use
  /// it as the "counters never regress" floor.
  std::uint32_t durable_alerts(sim::NodeId target) const;

  /// Un-flushed records for `target` discarded by crashes so far.
  std::uint32_t lost_alerts(sim::NodeId target) const;

  std::size_t pending_records() const { return pending_.size(); }
  std::size_t tail_records() const { return tail_.size(); }
  bool has_snapshot() const { return snapshot_.has_value(); }

  /// Compaction gate. A snapshot replaces (snapshot + tail) with the live
  /// station image, which is only sound when that image holds no state
  /// beyond the flushed log. The ingest pipeline closes the gate while
  /// degraded-mode records are counted but not yet journaled — a snapshot
  /// cut then would smuggle their counters into durable state, and a later
  /// crash would charge the same records to the lost ledger twice over.
  /// Appends and flushes are unaffected; compaction just waits.
  void set_snapshot_gate(bool open) { snapshot_gate_open_ = open; }

 private:
  void maybe_snapshot(const BaseStation& station);

  DurableConfig config_;
  std::optional<BaseStationState> snapshot_;
  /// Flushed (durable) records newer than the snapshot, in accept order.
  std::vector<WalRecord> tail_;
  /// Appended but not yet flushed — lost if the active station crashes.
  std::vector<WalRecord> pending_;
  /// Beacon positions re-registered on every restored station.
  std::vector<std::pair<sim::NodeId, util::Vec2>> roster_;
  /// Accepted records per target in (snapshot + tail).
  std::unordered_map<sim::NodeId, std::uint32_t> durable_alerts_;
  std::unordered_map<sim::NodeId, std::uint32_t> lost_alerts_;
  DurableStoreStats stats_;
  bool stalled_ = false;
  bool snapshot_gate_open_ = true;
  sim::SimTime last_advance_ = 0;
  std::size_t next_stall_ = 0;
};

}  // namespace sld::revocation
