// Trust-weighted suspiciousness (extension of §3's "reason about the
// suspiciousness of each beacon node"). The base-station counter scheme
// weighs every accepted alert equally, which is why N_a colluders can buy
// N_a (tau1+1)/(tau2+1) benign revocations. This model instead iterates
//
//     suspicion(t) = sum over reporters r accusing t of trust(r)
//     trust(r)     = 1 / (1 + suspicion(r))
//
// for a few rounds: nodes that are themselves heavily accused (the
// colluders, once the honest detecting nodes catch them) lose voting
// power, so their floods count for little. A target is revoked when its
// converged suspicion exceeds `revocation_threshold` — calibrated so that
// `ceil(threshold)` fully-trusted honest reporters still suffice.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/message.hpp"

namespace sld::revocation {

struct SuspiciousnessConfig {
  std::size_t iterations = 3;
  /// Suspicion mass needed to revoke (counter scheme analogue: tau2 + 1
  /// unit-weight alerts).
  double revocation_threshold = 3.0;
  /// Max distinct targets one reporter may accuse (tau1 + 1 analogue).
  std::uint32_t per_reporter_target_quota = 11;
};

struct SuspiciousnessResult {
  std::unordered_map<sim::NodeId, double> suspicion;  // per accused target
  std::unordered_map<sim::NodeId, double> trust;      // per reporter
  std::unordered_set<sim::NodeId> revoked;
};

/// Runs the iterative model over an alert stream (order matters only for
/// the quota; accusations are deduplicated per (reporter, target)).
SuspiciousnessResult evaluate_suspiciousness(
    const std::vector<sim::AlertPayload>& alerts,
    const SuspiciousnessConfig& config = {});

}  // namespace sld::revocation
