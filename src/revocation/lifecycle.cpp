#include "revocation/lifecycle.hpp"

#include <cmath>

#include "check/invariant.hpp"

namespace sld::revocation {

const char* lifecycle_phase_name(LifecyclePhase phase) {
  switch (phase) {
    case LifecyclePhase::kClear:
      return "clear";
    case LifecyclePhase::kSuspected:
      return "suspected";
    case LifecyclePhase::kQuarantined:
      return "quarantined";
    case LifecyclePhase::kRevoked:
      return "revoked";
    case LifecyclePhase::kExonerated:
      return "exonerated";
  }
  return "unknown";
}

double decay_factor(sim::SimTime elapsed, sim::SimTime half_life) {
  if (elapsed <= 0 || half_life <= 0) return 1.0;
  const sim::SimTime k = elapsed / half_life;
  // Past ~1074 half-lives even a subnormal underflows to exactly zero.
  if (k >= 1074) return 0.0;
  const double f = static_cast<double>(elapsed % half_life) /
                   static_cast<double>(half_life);
  // 2^f = e^(f ln 2), f in [0, 1): truncated Taylor with all-positive
  // coefficients, so p is strictly increasing in f and p(ln 2) < 2 —
  // 1/p(f ln 2) decreases within a segment and lands just above 0.5 at
  // the right edge, keeping the piecewise value monotone non-increasing
  // across half-life boundaries.
  const double y = f * 0.6931471805599453;
  double term = 1.0;
  double p = 1.0;
  for (int i = 1; i <= 12; ++i) {
    term *= y / static_cast<double>(i);
    p += term;
  }
  return std::ldexp(1.0 / p, -static_cast<int>(k));
}

LifecycleTracker::LifecycleTracker(const LifecycleConfig& config,
                                   double quarantine_threshold)
    : config_(config), quarantine_threshold_(quarantine_threshold) {}

void LifecycleTracker::register_beacon(sim::NodeId id, util::Vec2 position) {
  const auto [it, inserted] = positions_.try_emplace(id, position);
  if (inserted)
    roster_order_.push_back(id);
  else
    it->second = position;
}

BeaconLifecycleState& LifecycleTracker::touch(sim::NodeId beacon) {
  const auto [it, inserted] = states_.try_emplace(beacon);
  if (inserted) state_order_.push_back(beacon);
  return it->second;
}

std::uint32_t LifecycleTracker::independent_witnesses(
    const BeaconLifecycleState& st, const util::Vec2& target_pos) const {
  std::vector<util::Vec2> kept;
  for (const sim::NodeId reporter : st.reporters) {
    const auto pos_it = positions_.find(reporter);
    if (pos_it == positions_.end()) continue;  // unknown vantage: no weight
    const util::Vec2& pos = pos_it->second;
    if (util::distance(pos, target_pos) > config_.plausible_range_ft)
      continue;  // too far to have probed the target
    bool independent = true;
    for (const util::Vec2& w : kept) {
      if (util::distance(pos, w) < config_.independence_min_ft) {
        independent = false;
        break;
      }
    }
    if (independent) kept.push_back(pos);
    if (kept.size() >= config_.corroboration_k) break;
  }
  return static_cast<std::uint32_t>(kept.size());
}

bool LifecycleTracker::cell_census(sim::NodeId beacon, sim::SimTime now,
                                   std::int64_t* cell_x, std::int64_t* cell_y,
                                   std::uint32_t* usable) const {
  const auto pos_it = positions_.find(beacon);
  if (pos_it == positions_.end()) return false;
  const double cell = config_.cell_ft > 0 ? config_.cell_ft : 1.0;
  const auto cx = static_cast<std::int64_t>(std::floor(pos_it->second.x / cell));
  const auto cy = static_cast<std::int64_t>(std::floor(pos_it->second.y / cell));
  std::uint32_t count = 0;
  for (const sim::NodeId other : roster_order_) {
    if (other == beacon) continue;
    const util::Vec2& p = positions_.at(other);
    if (static_cast<std::int64_t>(std::floor(p.x / cell)) != cx ||
        static_cast<std::int64_t>(std::floor(p.y / cell)) != cy)
      continue;
    if (this->usable(other, now)) ++count;
  }
  *cell_x = cx;
  *cell_y = cy;
  *usable = count;
  return true;
}

std::vector<LifecycleTracker::CellCensus> LifecycleTracker::census_all(
    sim::SimTime now) const {
  const double cell = config_.cell_ft > 0 ? config_.cell_ft : 1.0;
  std::vector<CellCensus> cells;
  for (const sim::NodeId id : roster_order_) {
    const util::Vec2& p = positions_.at(id);
    const auto cx = static_cast<std::int64_t>(std::floor(p.x / cell));
    const auto cy = static_cast<std::int64_t>(std::floor(p.y / cell));
    CellCensus* entry = nullptr;
    for (CellCensus& c : cells) {
      if (c.cell_x == cx && c.cell_y == cy) {
        entry = &c;
        break;
      }
    }
    if (entry == nullptr) {
      cells.push_back(CellCensus{cx, cy, 0, 0});
      entry = &cells.back();
    }
    ++entry->beacons;
    if (usable(id, now)) ++entry->usable;
  }
  return cells;
}

LifecycleOutcome LifecycleTracker::observe(sim::NodeId reporter,
                                           sim::NodeId target,
                                           sim::SimTime now) {
  LifecycleOutcome out;
  BeaconLifecycleState& st = touch(target);
  SLD_INVARIANT(now >= st.last_update,
                "lifecycle time monotonicity: target " << target << " at "
                    << now << " after " << st.last_update);

  // Decay to now, then materialize any exoneration the decay implies
  // *before* the new alert lands (between alerts evidence only falls, so
  // checking at alert time is equivalent to checking continuously).
  st.evidence *= decay_factor(now - st.last_update, config_.half_life_ns);
  st.last_update = now;
  if (st.phase == LifecyclePhase::kQuarantined &&
      st.evidence < config_.clear_threshold) {
    st.phase = LifecyclePhase::kExonerated;
    st.reporters.clear();  // re-suspicion starts from a clean slate
    out.exonerated = true;
  } else if (st.phase == LifecyclePhase::kSuspected &&
             st.evidence < config_.clear_threshold) {
    st.phase = LifecyclePhase::kClear;
    st.reporters.clear();
  }

  st.evidence += 1.0;
  bool known = false;
  for (const sim::NodeId r : st.reporters) known = known || (r == reporter);
  if (!known) st.reporters.push_back(reporter);

  if (st.phase == LifecyclePhase::kClear ||
      st.phase == LifecyclePhase::kExonerated) {
    st.phase = LifecyclePhase::kSuspected;
    out.suspected = true;
  }

  if (st.phase == LifecyclePhase::kSuspected &&
      st.evidence > quarantine_threshold_) {
    out.cell_known =
        cell_census(target, now, &out.cell_x, &out.cell_y, &out.cell_usable);
    const bool floor_ok =
        !out.cell_known || out.cell_usable >= config_.min_usable_per_cell;
    const bool escalated =
        !floor_ok && st.evidence >= config_.escalation_threshold;
    if (floor_ok || escalated) {
      st.phase = LifecyclePhase::kQuarantined;
      out.quarantined = true;
      out.escalated = escalated;
    } else {
      out.guard_refused = true;
    }
  }

  if (st.phase == LifecyclePhase::kQuarantined &&
      st.evidence >= config_.revocation_evidence_min) {
    const auto pos_it = positions_.find(target);
    if (pos_it != positions_.end() &&
        independent_witnesses(st, pos_it->second) >= config_.corroboration_k) {
      st.phase = LifecyclePhase::kRevoked;
      out.revoked = true;
    }
  }

  out.evidence = st.evidence;
  return out;
}

std::vector<std::pair<sim::NodeId, LifecycleOutcome>> LifecycleTracker::settle(
    sim::SimTime now) {
  std::vector<std::pair<sim::NodeId, LifecycleOutcome>> settled;
  for (const sim::NodeId id : state_order_) {
    BeaconLifecycleState& st = states_.at(id);
    if (st.phase != LifecyclePhase::kQuarantined) continue;
    const double decayed =
        st.evidence * decay_factor(now - st.last_update, config_.half_life_ns);
    if (decayed >= config_.clear_threshold) continue;
    st.evidence = decayed;
    st.last_update = now;
    st.phase = LifecyclePhase::kExonerated;
    st.reporters.clear();
    LifecycleOutcome out;
    out.exonerated = true;
    out.evidence = decayed;
    settled.emplace_back(id, out);
  }
  return settled;
}

double LifecycleTracker::evidence(sim::NodeId beacon, sim::SimTime now) const {
  const auto it = states_.find(beacon);
  if (it == states_.end()) return 0.0;
  const BeaconLifecycleState& st = it->second;
  return st.evidence * decay_factor(now - st.last_update, config_.half_life_ns);
}

LifecyclePhase LifecycleTracker::phase(sim::NodeId beacon,
                                       sim::SimTime now) const {
  const auto it = states_.find(beacon);
  if (it == states_.end()) return LifecyclePhase::kClear;
  const BeaconLifecycleState& st = it->second;
  if (st.phase == LifecyclePhase::kQuarantined &&
      evidence(beacon, now) < config_.clear_threshold)
    return LifecyclePhase::kExonerated;
  if (st.phase == LifecyclePhase::kSuspected &&
      evidence(beacon, now) < config_.clear_threshold)
    return LifecyclePhase::kClear;
  return st.phase;
}

bool LifecycleTracker::is_revoked(sim::NodeId beacon) const {
  const auto it = states_.find(beacon);
  return it != states_.end() && it->second.phase == LifecyclePhase::kRevoked;
}

bool LifecycleTracker::usable(sim::NodeId beacon, sim::SimTime now) const {
  const LifecyclePhase p = phase(beacon, now);
  return p != LifecyclePhase::kRevoked && p != LifecyclePhase::kQuarantined;
}

std::size_t LifecycleTracker::distinct_reporters(sim::NodeId beacon) const {
  const auto it = states_.find(beacon);
  return it == states_.end() ? 0 : it->second.reporters.size();
}

std::vector<std::pair<sim::NodeId, BeaconLifecycleState>>
LifecycleTracker::export_state() const {
  std::vector<std::pair<sim::NodeId, BeaconLifecycleState>> out;
  out.reserve(state_order_.size());
  for (const sim::NodeId id : state_order_)
    out.emplace_back(id, states_.at(id));
  return out;
}

void LifecycleTracker::import_state(
    const std::vector<std::pair<sim::NodeId, BeaconLifecycleState>>& state) {
  states_.clear();
  state_order_.clear();
  for (const auto& [id, st] : state) {
    states_.emplace(id, st);
    state_order_.push_back(id);
  }
}

}  // namespace sld::revocation
