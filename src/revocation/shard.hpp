// Sharded, bounded, overload-resilient alert ingestion in front of the
// base-station cluster.
//
// PR 5 made the base station durable and highly available; this layer
// makes it survive load. Alerts are partitioned by target across S shards
// (so one hot target cannot head-of-line-block the rest), each shard owns
// a bounded ingress queue drained through a per-alert service-time model,
// and commits ride the DurableStore's `fsync_every_records` group-commit
// cadence — the shard drain generalizes that batching across queues.
//
// In front of the queues sits the AdmissionController (admission.hpp).
// Shedding is priority-aware: an alert against an already-suspected
// target (alert counter >= suspect_after) is always admitted, even past a
// full queue; a first-sight alert arriving at a full queue is shed
// last-in-first-out (drop-tail — the newest arrival is the one dropped,
// and it was never acknowledged, so the reporter's ARQ retries it once
// the storm abates). When the admission breaker reads degraded (WAL
// stall), commits bypass the WAL and the accepted keys are parked in a
// deferred list: journaled in accept order once the breaker leaves
// degraded, or charged to the durable store's lost ledger if the active
// station crashes first — evidence is never silently dropped, only
// explicitly accounted.
//
// A disabled config (admission off, S = 1 — the default) never constructs
// queues, draws no randomness, and submit() is an exact pass-through to
// BaseStationCluster::process_alert, keeping default runs bit-for-bit
// identical to the seed.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "revocation/admission.hpp"
#include "revocation/failover.hpp"
#include "sim/message.hpp"
#include "sim/time.hpp"

namespace sld::revocation {

struct ShardConfig {
  /// Ingestion shards; alerts are partitioned by target id modulo this.
  std::uint32_t count = 1;
  /// Queued-entry bound per shard (priority-lane admits may exceed it).
  std::size_t queue_capacity = 64;
  /// Modelled per-alert commit cost; a shard's queue drains at this rate.
  sim::SimTime service_time_ns = 2 * sim::kMillisecond;
};

/// The full ingestion-path configuration carried by SystemConfig.
struct IngestConfig {
  ShardConfig shard;
  AdmissionConfig admission;

  /// False guarantees the pipeline is an exact pass-through.
  bool enabled() const { return admission.enabled || shard.count > 1; }
};

struct IngestStats {
  std::uint64_t submitted = 0;
  /// Admitted into a shard queue (including priority admits).
  std::uint64_t accepted = 0;
  std::uint64_t rate_limited = 0;
  /// First-sight alerts dropped at a full queue.
  std::uint64_t shed = 0;
  /// Repeat (reporter, target) accusations absorbed by the pair rule.
  std::uint64_t pair_duplicates = 0;
  /// Suspected-target alerts admitted past a full queue.
  std::uint64_t priority_admits = 0;
  /// Entries handed to the cluster (any disposition).
  std::uint64_t committed = 0;
  /// Commits that bypassed the WAL in degraded mode.
  std::uint64_t deferred = 0;
  /// Deferred records re-journaled after the breaker left degraded.
  std::uint64_t deferred_journaled = 0;
  /// Deferred records destroyed by an active-station crash.
  std::uint64_t deferred_lost = 0;
  /// Entries queued across a service gap and drained at takeover/restart.
  std::uint64_t reconciled = 0;
  std::uint64_t breaker_transitions = 0;
};

/// What submit() tells the transport layer.
struct IngestResult {
  enum class Kind {
    kBypass,       // pipeline disabled: disposition is the cluster's answer
    kEnqueued,     // admitted; counted when its shard commits it
    kAbsorbed,     // repeat accusation; acked but carries no new evidence
    kRateLimited,  // reporter out of tokens; not acked (ARQ will retry)
    kShed,         // queue full, first sight; not acked (ARQ will retry)
  };
  Kind kind = Kind::kBypass;
  AlertDisposition disposition = AlertDisposition::kAccepted;
};

class IngestPipeline {
 public:
  /// Metric hooks, all optional (null = unregistered). The SystemContext
  /// only registers them when the pipeline is enabled, so default-config
  /// metric snapshots stay identical to the seed.
  struct Instruments {
    obs::Counter* accepted = nullptr;
    obs::Counter* shed = nullptr;
    obs::Counter* rate_limited = nullptr;
    obs::Counter* deferred = nullptr;
    obs::Histogram* latency_ms = nullptr;
    std::vector<obs::Gauge*> queue_depth;  // one per shard
    /// Numeric BreakerState (0 closed, 1 shedding, 2 degraded,
    /// 3 recovering) — the telemetry timeline's breaker track.
    obs::Gauge* breaker_state = nullptr;
  };

  /// Invoked at every commit with the cluster's disposition and the
  /// entry's enqueue/commit model times (the caller records revocation
  /// latencies and counter histograms from here).
  using CommitHook =
      std::function<void(sim::NodeId reporter, sim::NodeId target,
                         AlertDisposition disposition, sim::SimTime enqueued_at,
                         sim::SimTime committed_at)>;

  IngestPipeline(IngestConfig config, BaseStationCluster& cluster);

  const IngestConfig& config() const { return config_; }
  bool enabled() const { return config_.enabled(); }

  void set_tracer(obs::Tracer tracer) { trace_ = std::move(tracer); }
  void set_instruments(Instruments instruments);
  void set_commit_hook(CommitHook hook) { commit_hook_ = std::move(hook); }

  /// One alert arriving from the transport. Advances the pipeline to
  /// `now` first, so due commits always precede the new admission.
  IngestResult submit(sim::SimTime now, sim::NodeId reporter,
                      sim::NodeId target, std::uint64_t nonce);

  /// Applies cluster transitions, breaker moves and due commits up to
  /// `now`. Call at transition times and before reading revocations.
  void advance(sim::SimTime now);

  /// End of trial: advances to `now` and force-commits everything still
  /// queued (station permitting), then journals any leftover deferred
  /// records.
  void drain(sim::SimTime now);

  const IngestStats& stats() const { return stats_; }
  BreakerState breaker_state(sim::SimTime now) const {
    return admission_.state(now);
  }
  const AdmissionController& admission() const { return admission_; }
  std::size_t queue_depth() const;
  std::size_t queue_depth(std::size_t shard) const {
    return shards_[shard].queue.size();
  }
  std::size_t deferred_outstanding() const { return deferred_.size(); }

 private:
  struct Entry {
    AlertKey key;
    sim::SimTime enqueued_at = 0;
    sim::SimTime commit_at = 0;
    bool first_sight = true;
  };
  struct Shard {
    std::deque<Entry> queue;
    sim::SimTime busy_until = 0;
  };

  void on_transitions();
  void breaker_step(sim::SimTime now);
  void journal_deferred();
  void commit_due(sim::SimTime now, bool force);
  void commit_one(std::size_t shard_index, sim::SimTime now, bool degraded,
                  bool reconciling);
  void update_gauges();
  void trace_shed(const char* reason, sim::NodeId reporter, sim::NodeId target,
                  std::size_t shard_index);

  IngestConfig config_;
  BaseStationCluster& cluster_;
  AdmissionController admission_;
  obs::Tracer trace_;
  Instruments instruments_;
  CommitHook commit_hook_;
  std::vector<Shard> shards_;
  /// Accepted-but-not-journaled records (key + accept time), in accept
  /// order (degraded mode).
  std::vector<WalRecord> deferred_;
  BreakerState last_breaker_ = BreakerState::kClosed;
  /// Commits found the station down; the next in-service advance drains
  /// the backlog and counts it as reconciled.
  bool blocked_ = false;
  /// The advance time at which service came back for a blocked backlog —
  /// the earliest moment those entries could really have committed.
  sim::SimTime service_resumed_ = 0;
  std::uint64_t seen_crashes_ = 0;
  IngestStats stats_;
};

}  // namespace sld::revocation
