#include "revocation/admission.hpp"

#include <algorithm>
#include <stdexcept>

namespace sld::revocation {

const char* breaker_state_name(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kShedding:
      return "shedding";
    case BreakerState::kDegraded:
      return "degraded";
    case BreakerState::kRecovering:
      return "recovering";
  }
  return "unknown";
}

AdmissionController::AdmissionController(
    const AdmissionConfig& config, const std::vector<StallWindow>& stall_windows)
    : config_(config), pairs_(config.pair_window) {
  if (config_.reporter_rate_per_s < 0 || config_.reporter_burst < 0)
    throw std::invalid_argument("Admission: negative rate or burst");
  if (config_.breaker_trip_ns <= 0 || config_.breaker_cooldown_ns < 0 ||
      config_.shed_reopen_ns < 0)
    throw std::invalid_argument("Admission: breaker times must be positive");
  sim::SimTime prev_end = 0;
  for (const StallWindow& w : stall_windows) {
    if (w.end <= w.start || w.start < prev_end)
      throw std::invalid_argument(
          "Admission: stall windows must be sorted, non-overlapping and "
          "non-empty");
    prev_end = w.end;
    // The breaker reads degraded once the stall has lasted breaker_trip_ns;
    // a stall shorter than the trip time never trips it.
    if (w.start + config_.breaker_trip_ns < w.end)
      degraded_.push_back({w.start + config_.breaker_trip_ns, w.end});
  }
}

AdmissionController::Decision AdmissionController::admit(sim::NodeId reporter,
                                                         sim::NodeId target,
                                                         sim::SimTime now) {
  if (!config_.enabled) return Decision::kAdmit;
  // A repeat accusation carries no new evidence — absorb it before it can
  // spend a token, so floods of identical accusations are the cheapest
  // traffic there is.
  if (config_.pair_window != 0 &&
      pairs_.contains(AlertKey{reporter, target, 0}))
    return Decision::kDuplicatePair;
  if (config_.reporter_rate_per_s > 0) {
    const auto [it, fresh] = buckets_.try_emplace(
        reporter, Bucket{config_.reporter_burst, now});
    Bucket& b = it->second;
    if (!fresh) {
      const double elapsed_s = static_cast<double>(now - b.last_refill) /
                               static_cast<double>(sim::kSecond);
      b.tokens = std::min(config_.reporter_burst,
                          b.tokens + elapsed_s * config_.reporter_rate_per_s);
      b.last_refill = now;
    }
    if (b.tokens < 1.0) return Decision::kRateLimited;
    b.tokens -= 1.0;
  }
  return Decision::kAdmit;
}

void AdmissionController::remember_pair(sim::NodeId reporter,
                                        sim::NodeId target) {
  if (!config_.enabled || config_.pair_window == 0) return;
  pairs_.insert(AlertKey{reporter, target, 0});
}

void AdmissionController::note_shed(sim::SimTime now) {
  any_shed_ = true;
  last_shed_ = std::max(last_shed_, now);
}

BreakerState AdmissionController::state(sim::SimTime now) const {
  for (const StallWindow& d : degraded_) {
    if (d.start <= now && now < d.end) return BreakerState::kDegraded;
  }
  for (const StallWindow& d : degraded_) {
    if (now >= d.end && now < d.end + config_.breaker_cooldown_ns)
      return BreakerState::kRecovering;
  }
  if (any_shed_ && now < last_shed_ + config_.shed_reopen_ns)
    return BreakerState::kShedding;
  return BreakerState::kClosed;
}

}  // namespace sld::revocation
