// Primary/standby base-station pair with WAL-backed failover.
//
// Availability model: the primary emits heartbeats every
// `heartbeat_interval_ns`; an outage window silences them, and the standby
// promotes itself once `takeover_timeout_ns` has passed since the last
// heartbeat it saw. Promotion bumps the cluster *epoch*, which is stamped
// into every alert ack — when the old primary later returns (restored from
// the durable store) it observes the higher epoch in the ack stream and
// fences itself instead of processing alerts, so a split brain cannot
// double-count evidence. All transition times are pure functions of the
// configured outage windows, so trials stay deterministic.
//
// State reconciliation: the active station appends every accepted alert to
// the shared DurableStore; on takeover (or primary restart) the successor
// rebuilds from snapshot + WAL-tail replay. Alerts accepted but not yet
// flushed when the active station crashes are lost — bounded by the fsync
// interval — and alerts that never got an ack are re-sent by the reporters'
// ARQ, which the nonce dedup makes idempotent.
//
// A default FailoverConfig (no standby, no durability, no outages) is a
// zero-cost pass-through to a single BaseStation: no transitions exist and
// nothing extra is scheduled or drawn, keeping fault-free runs bit-for-bit
// identical to the seed.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "revocation/base_station.hpp"
#include "revocation/durable_store.hpp"
#include "sim/message.hpp"
#include "sim/time.hpp"

namespace sld::revocation {

/// The primary base station is dead (crashed, unreachable) in [start, end).
struct OutageWindow {
  sim::SimTime start = 0;
  sim::SimTime end = 0;
};

struct FailoverConfig {
  /// Whether a standby station exists and may take over.
  bool standby_enabled = false;
  /// Primary heartbeat period (first heartbeat at t = 0).
  sim::SimTime heartbeat_interval_ns = 500 * sim::kMillisecond;
  /// The standby promotes itself this long after the last heartbeat it saw.
  sim::SimTime takeover_timeout_ns = 2 * sim::kSecond;
  /// Persistence layer shared by both stations.
  DurableConfig durable;
  /// Scheduled primary outages (sorted, non-overlapping).
  std::vector<OutageWindow> primary_outages;

  /// False guarantees the cluster is a pass-through single station with no
  /// transitions.
  bool any_enabled() const {
    return standby_enabled || durable.enabled || !primary_outages.empty();
  }
};

struct ClusterStats {
  std::uint64_t failovers = 0;
  /// Old-primary returns fenced off by a higher epoch.
  std::uint64_t fences = 0;
  /// Primary restarts that resumed service (no standby had taken over).
  std::uint64_t restarts = 0;
  /// Crashes of the *active* station (volatile state lost). Outages that
  /// only hit an already-fenced primary do not count.
  std::uint64_t active_crashes = 0;
};

class BaseStationCluster {
 public:
  BaseStationCluster(RevocationConfig revocation, FailoverConfig failover);

  const FailoverConfig& failover_config() const { return failover_; }

  /// Installs the tracer on the cluster (bs.failover / bs.snapshot events)
  /// and the active stations (bs.alert / bs.revoke).
  void set_tracer(obs::Tracer tracer);

  /// Optional recovery-latency histogram (milliseconds): takeover delays
  /// and primary restart downtimes are observed into it.
  void set_recovery_histogram(obs::Histogram* hist) { recovery_hist_ = hist; }

  /// Applies every availability transition with time <= now. Idempotent;
  /// callers may advance as coarsely as they like, but never backwards.
  void advance(sim::SimTime now);

  /// True if an up-and-running station is accepting alerts at `now`.
  bool available(sim::SimTime now);

  /// Like available() but without advancing time — for callers that have
  /// already advanced the cluster to `now` in this step.
  bool in_service() const { return !service_down_; }

  /// Routes one alert to the active station and journals it if accepted.
  /// Precondition: available(now). `durable = false` skips the WAL append
  /// — the ingest pipeline's degraded mode, where the caller owns the
  /// record's fate until it is journal()ed or lost.
  AlertDisposition process_alert(sim::SimTime now, sim::NodeId reporter,
                                 sim::NodeId target, std::uint64_t nonce,
                                 bool durable = true);

  /// Appends one previously-deferred accepted record (with its original
  /// accept time) to the WAL (degraded mode recovery). The record must
  /// have been accepted by the active station via
  /// process_alert(..., durable = false).
  void journal(const WalRecord& record);

  /// Registers the deployment's beacon roster on every station and on
  /// the WAL (so restored stations get it back). Config-derived; no-op
  /// state-wise while the lifecycle is disabled.
  void set_beacon_roster(
      const std::vector<std::pair<sim::NodeId, util::Vec2>>& roster);

  /// End-of-trial lifecycle settle on the authority (see
  /// BaseStation::settle). No-op while the lifecycle is disabled.
  void settle(sim::SimTime now) { stations_[active_].settle(now); }

  /// Accounts a deferred record that a crash destroyed before journal().
  void note_deferred_lost(const AlertKey& record) { wal_.note_lost(record); }

  /// Closes/opens the WAL's snapshot-compaction gate (see
  /// DurableStore::set_snapshot_gate). Held closed by the ingest pipeline
  /// whenever deferred records are outstanding, so a snapshot never
  /// captures station state the log does not yet cover.
  void set_snapshot_gate(bool open) { wal_.set_snapshot_gate(open); }

  /// The station whose word currently counts (reads: revocation list,
  /// counters, stats). During an outage with no promoted standby this is
  /// the crashed primary's durable state — what a restart would recover.
  const BaseStation& authority() const { return stations_[active_]; }

  /// Current failover epoch; stamped into alert acks. Starts at 1.
  std::uint32_t epoch() const { return epoch_; }

  const DurableStore& wal() const { return wal_; }
  const ClusterStats& stats() const { return cluster_stats_; }

  /// Distinct alerts accepted by any station over the cluster's lifetime
  /// (live path only, replays excluded). The chaos convergence oracles
  /// compare this, minus the WAL's lost records, against the authority's
  /// counters.
  std::uint32_t accepted_distinct(sim::NodeId target) const;
  const std::unordered_map<sim::NodeId, std::uint32_t>& accepted_by_target()
      const {
    return accepted_;
  }

  // Read-throughs to the authority, for call-site convenience.
  bool is_revoked(sim::NodeId beacon) const {
    return authority().is_revoked(beacon);
  }
  std::uint32_t alert_counter(sim::NodeId beacon) const {
    return authority().alert_counter(beacon);
  }
  std::uint32_t report_counter(sim::NodeId beacon) const {
    return authority().report_counter(beacon);
  }
  bool is_quarantined(sim::NodeId beacon, sim::SimTime now) const {
    return authority().is_quarantined(beacon, now);
  }
  /// Usable for localization: neither revoked nor quarantined.
  bool usable(sim::NodeId beacon, sim::SimTime now) const {
    return authority().usable(beacon, now);
  }

  /// Availability transitions, precomputed at construction (exposed for
  /// tests and for scheduling trace-accurate transition events).
  struct Transition {
    enum class Kind { kPrimaryDown, kTakeover, kPrimaryBack };
    sim::SimTime t = 0;
    Kind kind = Kind::kPrimaryDown;
    /// The outage window this transition belongs to.
    std::size_t outage = 0;
  };
  const std::vector<Transition>& transitions() const { return transitions_; }

  /// How many of transitions() advance() has applied so far. Lets layered
  /// consumers (the ingest pipeline) detect crashes/takeovers that slipped
  /// between their own advance() calls without re-deriving the schedule.
  std::size_t transitions_applied() const { return next_transition_; }

 private:
  void apply(const Transition& tr);

  RevocationConfig revocation_;
  FailoverConfig failover_;
  obs::Tracer trace_;
  obs::Histogram* recovery_hist_ = nullptr;
  /// stations_[0] is the primary, stations_[1] the standby.
  std::vector<BaseStation> stations_;
  std::size_t active_ = 0;
  bool service_down_ = false;
  std::uint32_t epoch_ = 1;
  DurableStore wal_;
  std::vector<Transition> transitions_;
  std::size_t next_transition_ = 0;
  sim::SimTime last_advance_ = 0;
  std::unordered_map<sim::NodeId, std::uint32_t> accepted_;
  ClusterStats cluster_stats_;
};

}  // namespace sld::revocation
