#include "obs/memstats.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <new>
#include <unordered_map>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace sld::obs {

std::atomic<bool> Memstats::enabled_{false};
std::atomic<bool> Memstats::ever_enabled_{false};

namespace {

// Thread-local hook state. All trivially-constructed PODs: safe to touch
// from operator new/delete at any point of thread (or process) lifetime.
thread_local const char* tl_tag = nullptr;  // innermost SLD_MEM_SCOPE tag
thread_local bool tl_in_hook = false;       // reentrancy guard
thread_local bool tl_exiting = false;       // thread stats already retired

/// One thread's per-scope rows. Scopes are few (one per subsystem), so
/// lookup is a linear scan with pointer-identity fast path, like the
/// profiler's child lookup.
struct ThreadState {
  struct Row {
    const char* tag;
    MemScopeStats stats;
  };
  std::vector<Row> rows;

  MemScopeStats& find_or_add(const char* tag) {
    for (auto& row : rows) {
      if (row.tag == tag || std::strcmp(row.tag, tag) == 0) return row.stats;
    }
    rows.push_back(Row{tag, {}});
    return rows.back().stats;
  }

  const MemScopeStats* find(const char* tag) const {
    for (const auto& row : rows) {
      if (row.tag == tag || std::strcmp(row.tag, tag) == 0) return &row.stats;
    }
    return nullptr;
  }
};

void merge_into(std::vector<MemScopeSnapshot>& out, const char* tag,
                const MemScopeStats& stats) {
  for (auto& scope : out) {
    if (scope.name == tag) {
      scope.stats.merge(stats);
      return;
    }
  }
  out.push_back(MemScopeSnapshot{tag, stats});
}

struct Registry {
  std::mutex mutex;
  std::vector<std::unique_ptr<ThreadState>> threads;
  /// Name-merged stats of threads that have exited.
  std::vector<MemScopeSnapshot> retired;
};

/// Intentionally leaked: frees can arrive after static destructors run.
Registry& registry() {
  static Registry* reg = new Registry;
  return *reg;
}

/// Registers the calling thread's state on first use; the destructor runs
/// at thread exit and folds the stats into the retired accumulator, so
/// pool workers neither leak registry slots nor lose recorded counts.
struct Registration {
  ThreadState* state = nullptr;
  ~Registration() {
    tl_exiting = true;
    if (state == nullptr) return;
    Registry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    for (const auto& row : state->rows)
      merge_into(reg.retired, row.tag, row.stats);
    for (auto it = reg.threads.begin(); it != reg.threads.end(); ++it) {
      if (it->get() == state) {
        reg.threads.erase(it);
        break;
      }
    }
  }
};
thread_local Registration tl_reg;

ThreadState& local_state() {
  if (tl_reg.state == nullptr) {
    auto owned = std::make_unique<ThreadState>();
    tl_reg.state = owned.get();
    Registry& reg = registry();
    const std::lock_guard<std::mutex> lock(reg.mutex);
    reg.threads.push_back(std::move(owned));
  }
  return *tl_reg.state;
}

/// ptr -> (size, scope) of every live tracked allocation, sharded to keep
/// alloc/free contention between pool workers low. Intentionally leaked.
struct PtrTable {
  struct Entry {
    std::size_t size;
    const char* tag;
  };
  struct Shard {
    std::mutex mutex;
    std::unordered_map<void*, Entry> map;
  };
  static constexpr std::size_t kShards = 64;
  std::array<Shard, kShards> shards;

  Shard& shard_for(void* p) {
    auto h = reinterpret_cast<std::uintptr_t>(p);
    h ^= h >> 12;
    return shards[h & (kShards - 1)];
  }

  void insert(void* p, std::size_t size, const char* tag) {
    Shard& s = shard_for(p);
    const std::lock_guard<std::mutex> lock(s.mutex);
    s.map[p] = Entry{size, tag};
  }

  bool erase(void* p, Entry* out) {
    Shard& s = shard_for(p);
    const std::lock_guard<std::mutex> lock(s.mutex);
    auto it = s.map.find(p);
    if (it == s.map.end()) return false;
    *out = it->second;
    s.map.erase(it);
    return true;
  }
};

PtrTable& table() {
  static PtrTable* t = new PtrTable;
  return *t;
}

/// Attributes a successful allocation to the calling thread's innermost
/// scope. Internal bookkeeping allocations recurse into operator new with
/// tl_in_hook set and pass through unrecorded.
void record_alloc(void* p, std::size_t size) {
  if (!Memstats::enabled() || tl_in_hook || tl_exiting) return;
  const char* tag = tl_tag;
  if (tag == nullptr) return;
  tl_in_hook = true;
  MemScopeStats& s = local_state().find_or_add(tag);
  s.allocs += 1;
  s.alloc_bytes += size;
  s.live_bytes += static_cast<std::int64_t>(size);
  if (s.live_bytes > s.peak_live_bytes) s.peak_live_bytes = s.live_bytes;
  s.size_class[mem_size_class(size)] += 1;
  table().insert(p, size, tag);
  tl_in_hook = false;
}

/// Matches a free against the pointer table and credits it to the
/// allocating scope (in the calling thread's stats — per-scope counts are
/// summed across threads, so the credit lands in the right scope row of
/// the merged view regardless of which thread frees).
void record_free(void* p) {
  tl_in_hook = true;
  PtrTable::Entry entry;
  if (table().erase(p, &entry) && !tl_exiting) {
    MemScopeStats& s = local_state().find_or_add(entry.tag);
    s.frees += 1;
    s.freed_bytes += entry.size;
    s.live_bytes -= static_cast<std::int64_t>(entry.size);
  }
  tl_in_hook = false;
}

/// malloc with over-alignment support; nullptr on failure.
void* raw_alloc(std::size_t size, std::size_t align) noexcept {
  if (size == 0) size = 1;
  if (align <= alignof(std::max_align_t)) return std::malloc(size);
  if (align < sizeof(void*)) align = sizeof(void*);
  void* p = nullptr;
  if (::posix_memalign(&p, align, size) != 0) return nullptr;
  return p;
}

void* hook_alloc(std::size_t size, std::size_t align) {
  for (;;) {
    void* p = raw_alloc(size, align);
    if (p != nullptr) {
      record_alloc(p, size);
      return p;
    }
    const std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
  }
}

void* hook_alloc_nothrow(std::size_t size, std::size_t align) noexcept {
  try {
    return hook_alloc(size, align);
  } catch (...) {
    return nullptr;
  }
}

void hook_free(void* p) noexcept {
  if (p == nullptr) return;
  // Fast path: a process that never enabled memstats frees straight
  // through. Once tracking ever ran, frees consult the table so tracked
  // pointers are debited and stale entries can never alias a reused
  // address.
  if (Memstats::ever_enabled() && !tl_in_hook) record_free(p);
  std::free(p);
}

}  // namespace

void MemScopeStats::merge(const MemScopeStats& other) {
  allocs += other.allocs;
  frees += other.frees;
  alloc_bytes += other.alloc_bytes;
  freed_bytes += other.freed_bytes;
  live_bytes += other.live_bytes;
  peak_live_bytes += other.peak_live_bytes;
  for (std::size_t i = 0; i < kMemSizeClasses; ++i)
    size_class[i] += other.size_class[i];
}

void MemHotTotals::merge(const MemHotTotals& other) {
  enabled = enabled || other.enabled;
  allocs += other.allocs;
  alloc_bytes += other.alloc_bytes;
  frees += other.frees;
  freed_bytes += other.freed_bytes;
  peak_live_bytes = std::max(peak_live_bytes, other.peak_live_bytes);
  max_queue_depth = std::max(max_queue_depth, other.max_queue_depth);
  queue_depth_p99 = std::max(queue_depth_p99, other.queue_depth_p99);
  sift_up_steps += other.sift_up_steps;
  sift_down_steps += other.sift_down_steps;
  scans += other.scans;
  scan_nodes += other.scan_nodes;
  packet_lifetime_p99_ns =
      std::max(packet_lifetime_p99_ns, other.packet_lifetime_p99_ns);
}

std::size_t mem_size_class(std::size_t size) {
  std::size_t cls = 0;
  std::size_t bound = 16;
  while (size > bound && cls + 1 < kMemSizeClasses) {
    bound <<= 1;
    cls += 1;
  }
  return cls;
}

std::uint64_t current_rss_kb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // Linux reports ru_maxrss in KiB (macOS in bytes; close enough for the
  // dashboards this feeds — the repo targets Linux CI).
  return static_cast<std::uint64_t>(usage.ru_maxrss);
#else
  return 0;
#endif
}

void Memstats::set_enabled(bool on) {
  if (on) ever_enabled_.store(true, std::memory_order_relaxed);
  enabled_.store(on, std::memory_order_relaxed);
}

MemScopeStats Memstats::thread_totals_for(const char* tag) {
  if (tl_reg.state == nullptr) return {};
  const MemScopeStats* found = tl_reg.state->find(tag);
  return found != nullptr ? *found : MemScopeStats{};
}

void Memstats::reset_thread_peaks() {
  if (tl_reg.state == nullptr) return;
  for (auto& row : tl_reg.state->rows)
    row.stats.peak_live_bytes = row.stats.live_bytes;
}

std::vector<MemScopeSnapshot> Memstats::snapshot() {
  Registry& reg = registry();
  std::vector<MemScopeSnapshot> out;
  {
    const std::lock_guard<std::mutex> lock(reg.mutex);
    out = reg.retired;
    for (const auto& thread : reg.threads)
      for (const auto& row : thread->rows)
        merge_into(out, row.tag, row.stats);
  }
  std::sort(out.begin(), out.end(),
            [](const MemScopeSnapshot& a, const MemScopeSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

std::string Memstats::snapshot_json() {
  const auto scopes = snapshot();
  std::string out;
  out.reserve(512);
  out += "{\"schema\":\"sld-memstats/v1\",\"scopes\":[";
  for (std::size_t i = 0; i < scopes.size(); ++i) {
    const auto& scope = scopes[i];
    if (i) out += ',';
    out += "{\"name\":\"";
    out += scope.name;  // tags are literals: no escaping needed
    out += "\",\"allocs\":";
    out += std::to_string(scope.stats.allocs);
    out += ",\"frees\":";
    out += std::to_string(scope.stats.frees);
    out += ",\"alloc_bytes\":";
    out += std::to_string(scope.stats.alloc_bytes);
    out += ",\"freed_bytes\":";
    out += std::to_string(scope.stats.freed_bytes);
    out += ",\"live_bytes\":";
    out += std::to_string(scope.stats.live_bytes);
    out += ",\"peak_live_bytes\":";
    out += std::to_string(scope.stats.peak_live_bytes);
    out += ",\"size_class\":[";
    for (std::size_t c = 0; c < kMemSizeClasses; ++c) {
      if (c) out += ',';
      out += std::to_string(scope.stats.size_class[c]);
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::string Memstats::format_table() {
  const auto scopes = snapshot();
  std::string out = "# memstats: per-scope allocation totals\n";
  char line[192];
  std::snprintf(line, sizeof(line), "%-16s %12s %12s %14s %14s %14s\n",
                "scope", "allocs", "frees", "alloc_kb", "live_kb",
                "peak_kb");
  out += line;
  for (const auto& scope : scopes) {
    std::snprintf(line, sizeof(line),
                  "%-16s %12llu %12llu %14.1f %14.1f %14.1f\n",
                  scope.name.c_str(),
                  static_cast<unsigned long long>(scope.stats.allocs),
                  static_cast<unsigned long long>(scope.stats.frees),
                  static_cast<double>(scope.stats.alloc_bytes) / 1024.0,
                  static_cast<double>(scope.stats.live_bytes) / 1024.0,
                  static_cast<double>(scope.stats.peak_live_bytes) / 1024.0);
    out += line;
  }
  if (scopes.empty()) out += "# (no scoped allocations recorded)\n";
  return out;
}

void Memstats::reset() {
  Registry& reg = registry();
  const std::lock_guard<std::mutex> lock(reg.mutex);
  for (auto& thread : reg.threads) thread->rows.clear();
  reg.retired.clear();
}

const char* Memstats::push_scope(const char* tag) {
  const char* prev = tl_tag;
  tl_tag = tag;
  return prev;
}

void Memstats::pop_scope(const char* prev) { tl_tag = prev; }

}  // namespace sld::obs

// ---------------------------------------------------------------------------
// Global allocation hooks. Replacing the usual global operator new/delete
// set routes every heap allocation in the process through memstats; with
// tracking off (the default, and any process that never passes --memstats)
// each call is plain malloc/free behind one relaxed atomic load.

void* operator new(std::size_t size) {
  return sld::obs::hook_alloc(size, alignof(std::max_align_t));
}
void* operator new[](std::size_t size) {
  return sld::obs::hook_alloc(size, alignof(std::max_align_t));
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return sld::obs::hook_alloc_nothrow(size, alignof(std::max_align_t));
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return sld::obs::hook_alloc_nothrow(size, alignof(std::max_align_t));
}
void* operator new(std::size_t size, std::align_val_t align) {
  return sld::obs::hook_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return sld::obs::hook_alloc(size, static_cast<std::size_t>(align));
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return sld::obs::hook_alloc_nothrow(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return sld::obs::hook_alloc_nothrow(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { sld::obs::hook_free(p); }
void operator delete[](void* p) noexcept { sld::obs::hook_free(p); }
void operator delete(void* p, std::size_t) noexcept {
  sld::obs::hook_free(p);
}
void operator delete[](void* p, std::size_t) noexcept {
  sld::obs::hook_free(p);
}
void operator delete(void* p, std::align_val_t) noexcept {
  sld::obs::hook_free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  sld::obs::hook_free(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  sld::obs::hook_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  sld::obs::hook_free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  sld::obs::hook_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  sld::obs::hook_free(p);
}
