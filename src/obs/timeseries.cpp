#include "obs/timeseries.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace sld::obs {

namespace {
void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char num[40];
  std::snprintf(num, sizeof(num), "%.10g", v);
  out += num;
}

void append_quoted(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}
}  // namespace

const std::uint64_t* WindowSample::counter(std::string_view name) const {
  for (const auto& [n, v] : counters)
    if (n == name) return &v;
  return nullptr;
}

const std::uint64_t* WindowSample::delta(std::string_view name) const {
  for (const auto& [n, v] : deltas)
    if (n == name) return &v;
  return nullptr;
}

const double* WindowSample::gauge(std::string_view name) const {
  for (const auto& [n, v] : gauges)
    if (n == name) return &v;
  return nullptr;
}

const WindowSample::HistQ* WindowSample::hist(std::string_view name) const {
  for (const auto& h : hists)
    if (h.name == name) return &h;
  return nullptr;
}

double WindowSample::rate_per_s(std::string_view name) const {
  const std::uint64_t* d = delta(name);
  if (d == nullptr || duration_ns() <= 0) return 0.0;
  return static_cast<double>(*d) * 1e9 / static_cast<double>(duration_ns());
}

TimeseriesSampler::TimeseriesSampler(const MetricsRegistry& registry,
                                     const TimeseriesOptions& options)
    : registry_(registry),
      sink_(options.sink),
      cadence_ns_(options.cadence_ns),
      ring_capacity_(options.ring_capacity) {
  if (cadence_ns_ <= 0)
    throw std::invalid_argument("TimeseriesSampler: cadence must be > 0");
  if (ring_capacity_ == 0)
    throw std::invalid_argument("TimeseriesSampler: ring capacity must be > 0");
}

void TimeseriesSampler::begin(std::int64_t t0, std::uint64_t seed) {
  if (begun_)
    throw std::logic_error("TimeseriesSampler::begin: already begun");
  begun_ = true;
  next_end_ = t0 + cadence_ns_;
  // The baseline for window 0's deltas is the registry state at t0.
  prev_counters_.clear();
  registry_.for_each_counter([this](const std::string&, const Counter& c) {
    prev_counters_.push_back(c.value());
  });
  if (sink_ != nullptr && sink_->enabled()) {
    sink_->write(Event("ts.meta", t0)
                     .f("schema", "timeseries/v1")
                     .f("cadence_ns", cadence_ns_)
                     .f("seed", seed)
                     .finish());
  }
}

void TimeseriesSampler::advance_to(std::int64_t t) {
  if (!begun_) return;
  while (next_end_ <= t) {
    close_window(next_end_ - cadence_ns_, next_end_);
    next_end_ += cadence_ns_;
  }
}

void TimeseriesSampler::finish(std::int64_t t) {
  if (!begun_) return;
  advance_to(t);
  // Time stopped mid-window: close the partial tail so the stream always
  // accounts for every instant of the trial.
  const std::int64_t start = next_end_ - cadence_ns_;
  if (t > start) close_window(start, t);
  begun_ = false;
}

void TimeseriesSampler::close_window(std::int64_t start, std::int64_t end) {
  if (presample_) presample_(end);

  WindowSample w;
  w.index = windows_closed_;
  w.t_start_ns = start;
  w.t_end_ns = end;
  std::size_t i = 0;
  registry_.for_each_counter(
      [&](const std::string& name, const Counter& c) {
        const std::uint64_t cur = c.value();
        const std::uint64_t prev = i < prev_counters_.size()
                                       ? prev_counters_[i]
                                       : 0;  // registered mid-trial
        w.counters.emplace_back(name, cur);
        w.deltas.emplace_back(name, cur - prev);
        if (i < prev_counters_.size())
          prev_counters_[i] = cur;
        else
          prev_counters_.push_back(cur);
        ++i;
      });
  registry_.for_each_gauge([&](const std::string& name, const Gauge& g) {
    w.gauges.emplace_back(name, g.value());
  });
  registry_.for_each_histogram(
      [&](const std::string& name, const Histogram& h) {
        WindowSample::HistQ q;
        q.name = name;
        q.count = h.count();
        q.p50 = h.p50();
        q.p90 = h.p90();
        q.p99 = h.p99();
        w.hists.push_back(std::move(q));
      });

  ++windows_closed_;
  ring_.push_back(w);
  while (ring_.size() > ring_capacity_) {
    ring_.pop_front();
    ++evicted_;
  }
  emit_window(w);
  if (observer_) observer_(w);
}

void TimeseriesSampler::emit_window(const WindowSample& w) {
  if (sink_ == nullptr || !sink_->enabled()) return;
  Event e("ts.window", w.t_end_ns);
  e.f("idx", w.index).f("start", w.t_start_ns).f("end", w.t_end_ns);

  std::string obj;
  obj.reserve(256);
  obj += '{';
  for (std::size_t i = 0; i < w.counters.size(); ++i) {
    if (i) obj += ',';
    append_quoted(obj, w.counters[i].first);
    obj += ':';
    obj += std::to_string(w.counters[i].second);
  }
  obj += '}';
  e.raw("counters", obj);

  obj.clear();
  obj += '{';
  for (std::size_t i = 0; i < w.deltas.size(); ++i) {
    if (i) obj += ',';
    append_quoted(obj, w.deltas[i].first);
    obj += ':';
    obj += std::to_string(w.deltas[i].second);
  }
  obj += '}';
  e.raw("deltas", obj);

  obj.clear();
  obj += '{';
  for (std::size_t i = 0; i < w.gauges.size(); ++i) {
    if (i) obj += ',';
    append_quoted(obj, w.gauges[i].first);
    obj += ':';
    append_number(obj, w.gauges[i].second);
  }
  obj += '}';
  e.raw("gauges", obj);

  obj.clear();
  obj += '{';
  for (std::size_t i = 0; i < w.hists.size(); ++i) {
    if (i) obj += ',';
    const auto& h = w.hists[i];
    append_quoted(obj, h.name);
    obj += ":{\"count\":";
    obj += std::to_string(h.count);
    obj += ",\"p50\":";
    append_number(obj, h.p50);
    obj += ",\"p90\":";
    append_number(obj, h.p90);
    obj += ",\"p99\":";
    append_number(obj, h.p99);
    obj += '}';
  }
  obj += '}';
  e.raw("hists", obj);

  sink_->write(e.finish());
}

std::string TimeseriesSampler::render_tail(std::size_t n) const {
  std::string out;
  const std::size_t take = n < ring_.size() ? n : ring_.size();
  out += "telemetry tail: last " + std::to_string(take) + " of " +
         std::to_string(windows_closed_) + " windows (cadence " +
         std::to_string(cadence_ns_ / 1'000'000) + " ms)\n";
  for (std::size_t i = ring_.size() - take; i < ring_.size(); ++i) {
    const WindowSample& w = ring_[i];
    out += "  w" + std::to_string(w.index) + " [" +
           std::to_string(w.t_start_ns / 1'000'000) + ".." +
           std::to_string(w.t_end_ns / 1'000'000) + " ms]";
    for (const auto& [name, d] : w.deltas) {
      if (d == 0) continue;
      out += ' ' + name + "+=" + std::to_string(d);
    }
    for (const auto& [name, v] : w.gauges) {
      if (v == 0.0) continue;
      char num[48];
      std::snprintf(num, sizeof(num), " %s=%.6g", name.c_str(), v);
      out += num;
    }
    out += '\n';
  }
  return out;
}

}  // namespace sld::obs
