// Declarative SLO health monitors over the time-series telemetry stream.
//
// A rule binds one window-derived signal — a counter's per-second rate or
// cumulative total, a gauge, a histogram quantile, or a burn rate (the
// bad/total delta ratio measured against an error-budget objective) — to a
// threshold with sustain/clear hysteresis:
//
//   name source(metric) cmp threshold [sustain=N] [clear=N]
//
//   shed_rate  rate(bs.ingest.shed) > 50 sustain=2 clear=2
//   backlog    gauge(bs.ingest.queue_depth.s0) >= 16
//   slow_p99   p99(bs.ingest.latency_ms) > 500 sustain=3
//   shed_burn  burn(bs.ingest.shed/bs.ingest.accepted, 0.01) > 1 sustain=2
//
// Rules are evaluated online as the TimeseriesSampler closes windows: a
// rule *breaches* after `sustain` consecutive bad windows (never earlier —
// a property test pins this), emits `slo.breach`, and *recovers* after
// `clear` consecutive good windows, emitting `slo.recover`. The monitor
// folds a pass/fail health verdict plus a bounded breach log into JSON for
// TrialSummary::metrics_json. A window in which the rule's metric does not
// exist (yet) counts as good. Everything is a pure function of the window
// stream: no wall clock, no randomness.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/timeseries.hpp"
#include "obs/trace.hpp"

namespace sld::obs {

enum class SloSource {
  kRate,   // counter delta / window seconds
  kTotal,  // cumulative counter value
  kGauge,  // last-written gauge value
  kP50,    // histogram quantiles (cumulative, not per-window)
  kP90,
  kP99,
  kBurn,  // (bad delta / total delta) / objective
};

enum class SloCmp { kGt, kGe, kLt, kLe };

struct SloRule {
  std::string name;
  SloSource source = SloSource::kRate;
  std::string metric;
  /// Burn rate only: the denominator counter and the error-budget
  /// objective (allowed bad fraction; value 1.0 == burning exactly at
  /// budget).
  std::string total_metric;
  double objective = 0.0;
  SloCmp cmp = SloCmp::kGt;
  double threshold = 0.0;
  /// Consecutive bad windows required before the rule breaches (>= 1).
  std::size_t sustain_windows = 1;
  /// Consecutive good windows required before a breached rule recovers.
  std::size_t clear_windows = 1;
};

/// Parses a spec: rules separated by ';' or newlines, '#' starts a
/// comment, blank entries ignored. Throws std::invalid_argument with a
/// one-line diagnostic on malformed input.
std::vector<SloRule> parse_slo_spec(const std::string& spec);

/// One-line grammar summary for --help texts.
const char* slo_spec_grammar();

class SloMonitor {
 public:
  explicit SloMonitor(std::vector<SloRule> rules);

  /// Destinations for slo.breach / slo.recover events (typically the main
  /// trace and the telemetry stream). Off tracers cost one branch.
  void add_tracer(Tracer tracer) { tracers_.push_back(std::move(tracer)); }

  /// Evaluates every rule against one closed window, firing breach and
  /// recover transitions.
  void on_window(const WindowSample& w);

  const std::vector<SloRule>& rules() const { return rules_; }
  std::uint64_t breaches() const { return breaches_; }
  std::uint64_t recovers() const { return recovers_; }
  /// Rules currently in breach.
  std::size_t active() const;
  /// True when no rule is in breach right now (end-of-trial verdict; past,
  /// recovered breaches stay visible in breaches() and the log).
  bool healthy() const { return active() == 0; }

  struct LogEntry {
    std::string rule;
    bool breach = true;  // false == recover
    std::int64_t t_ns = 0;
    std::uint64_t window = 0;
    double value = 0.0;
  };
  const std::vector<LogEntry>& log() const { return log_; }

  /// {"rules":N,"breaches":B,"recovers":R,"active":A,"healthy":bool,
  ///  "log":[{"rule":..,"kind":..,"t":..,"window":..,"value":..},...],
  ///  "log_dropped":D} — spliced into TrialSummary::metrics_json.
  std::string verdict_json() const;

 private:
  struct RuleState {
    bool breached = false;
    std::size_t bad_streak = 0;
    std::size_t good_streak = 0;
  };

  /// Signal value + bad verdict for one rule over one window. `defined`
  /// is false when the rule's metric is absent from the window.
  struct Eval {
    bool defined = false;
    double value = 0.0;
    bool bad = false;
  };
  Eval evaluate(const SloRule& rule, const WindowSample& w) const;
  void fire(const SloRule& rule, const RuleState& state, bool breach,
            const WindowSample& w, double value);

  std::vector<SloRule> rules_;
  std::vector<RuleState> states_;
  std::vector<Tracer> tracers_;
  std::uint64_t breaches_ = 0;
  std::uint64_t recovers_ = 0;
  std::vector<LogEntry> log_;
  std::uint64_t log_dropped_ = 0;
  static constexpr std::size_t kMaxLog = 32;
};

}  // namespace sld::obs
