// Structured event tracing (the observability subsystem's event half; see
// obs/metrics.hpp for the metrics half).
//
// Every interesting decision in the pipeline — packet fates in the channel,
// ARQ timeouts/retries, probe verdicts with the measured-vs-expected values
// that produced them, alert processing and revocations — can emit one
// structured, sim-time-stamped JSONL record through a `Tracer`. The default
// tracer is OFF: `Tracer::on()` is a cached boolean test, no record is ever
// built, no sink is touched, and (crucially) no randomness is drawn — a
// traced run and an untraced run of the same seed produce bit-for-bit
// identical results. Records are keyed on *simulation* time (the tracer's
// clock, typically `Scheduler::now()`), never wall clock, so traces are
// reproducible.
//
// Record shape: `{"t":<sim ns>,"e":"<event type>", ...fields}` — one JSON
// object per line. The event taxonomy and per-type schema live in DESIGN.md
// ("Observability") and are validated by tools/trace_report.py --validate.
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace sld::obs {

/// Destination of trace records. Implementations must be cheap to query:
/// `enabled()` gates every emit site.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// False => emit sites skip record construction entirely.
  virtual bool enabled() const = 0;

  /// Receives one complete JSON object (no trailing newline).
  virtual void write(std::string_view jsonl_line) = 0;
};

/// The zero-overhead default: never enabled, never written to.
class NullSink final : public TraceSink {
 public:
  bool enabled() const override { return false; }
  void write(std::string_view) override {}
};

/// Collects records in memory — tests and in-process trace replay
/// (examples/wormhole_forensics) consume this.
class MemorySink final : public TraceSink {
 public:
  bool enabled() const override { return true; }
  void write(std::string_view line) override { lines_.emplace_back(line); }
  const std::vector<std::string>& lines() const { return lines_; }
  /// Steals the buffered lines (the sink ends up empty) — the parallel
  /// trial executor drains each per-trial buffer without copying it.
  std::vector<std::string> take_lines() { return std::move(lines_); }
  void clear() { lines_.clear(); }

 private:
  std::vector<std::string> lines_;
};

/// Writes one record per line (JSONL) to a borrowed stream or an owned file.
class JsonlSink final : public TraceSink {
 public:
  /// Borrowed stream; must outlive the sink.
  explicit JsonlSink(std::ostream& os);
  /// Owned file (truncated); throws std::runtime_error if it cannot open.
  explicit JsonlSink(const std::string& path);

  bool enabled() const override { return true; }
  void write(std::string_view line) override;

  std::uint64_t records() const { return records_; }

 private:
  std::unique_ptr<std::ofstream> owned_;
  std::ostream* os_;
  std::uint64_t records_ = 0;
};

/// Builder for one record. Construct with the event type and sim time, chain
/// `f(key, value)` calls, then hand it to `Tracer::emit`. String values are
/// JSON-escaped; non-finite doubles become `null`.
class Event {
 public:
  Event(std::string_view type, std::int64_t t_ns);

  Event& f(std::string_view key, std::string_view v);
  Event& f(std::string_view key, const char* v) {
    return f(key, std::string_view(v));
  }
  Event& f(std::string_view key, bool v);
  Event& f(std::string_view key, double v);
  Event& f(std::string_view key, std::int64_t v);
  Event& f(std::string_view key, std::uint64_t v);
  Event& f(std::string_view key, std::uint32_t v) {
    return f(key, static_cast<std::uint64_t>(v));
  }
  Event& f(std::string_view key, int v) {
    return f(key, static_cast<std::int64_t>(v));
  }

  /// Splices pre-rendered JSON in as the value — for nested objects (the
  /// time-series windows). The caller owns the value's well-formedness.
  Event& raw(std::string_view key, std::string_view json);

  /// Closes the object and returns the line. The Event must not be reused.
  std::string finish();

 private:
  void key_prefix(std::string_view key);

  std::string buf_;
};

/// The handle every instrumented layer holds. Default-constructed tracers
/// are off; `on()` is a cached bool so hot paths pay one branch. The clock
/// supplies the current simulation time (bind it to `Scheduler::now`).
class Tracer {
 public:
  using Clock = std::function<std::int64_t()>;

  Tracer() = default;
  Tracer(TraceSink* sink, Clock clock)
      : sink_(sink),
        clock_(std::move(clock)),
        on_(sink != nullptr && sink->enabled()) {}

  bool on() const { return on_; }
  std::int64_t now_ns() const { return clock_ ? clock_() : 0; }

  /// Starts a record stamped with the current sim time.
  Event event(std::string_view type) const { return Event(type, now_ns()); }

  void emit(Event& e) const {
    if (on_) sink_->write(e.finish());
  }
  void emit(Event&& e) const { emit(e); }

 private:
  TraceSink* sink_ = nullptr;
  Clock clock_;
  bool on_ = false;
};

}  // namespace sld::obs
