// Allocation telemetry (the observability subsystem's where-did-the-memory-
// go half; see obs/profiler.hpp for wall time and obs/metrics.hpp for
// aggregates).
//
// Instrumented code marks a region with `SLD_MEM_SCOPE("subsystem")`: an
// RAII tag that attributes every heap allocation made while it is live (on
// the same thread, innermost tag wins) to that subsystem. The layer is OFF
// by default and follows the same cached-boolean gating discipline as
// `Tracer` and `Profiler`: with memstats disabled the replaced global
// `operator new`/`operator delete` are a relaxed atomic load and a branch
// in front of plain malloc/free — no tracking structure is touched, no
// allocation happens, and no randomness is drawn, so a memstats-off run is
// bit-for-bit identical to the seed (tests/test_memstats.cpp asserts this).
//
// What is counted, per scope tag: allocations, frees, bytes allocated and
// freed, live/peak live bytes, and a 16-class power-of-two size histogram.
// Only allocations made inside an `SLD_MEM_SCOPE` are attributed — harness
// and library allocations outside any scope pass through unrecorded, which
// is what makes the per-scope counts invariant across `--jobs N`: every
// trial runs sealed to one worker thread, so its scoped allocations (and
// the frees of those pointers, matched through a sharded pointer table and
// credited to the allocating scope) are identical whether trials run
// serially or fanned over a pool, and the cross-thread merge (sum counts,
// per-thread peaks) reproduces the serial totals exactly. Peak live bytes
// is the one approximate field: it is a per-thread high-water mark, so
// concurrent trials sharing a scope make the merged peak depend on worker
// count — it is reported but excluded from exact regression gates.
//
// Thread-exit handling mirrors the profiler: each thread's stats are
// registered once and folded into a retired accumulator when the thread
// exits, so `snapshot()` survives WorkStealingPool worker churn.
//
// Thread-safety contract: recording touches only the calling thread's
// stats plus one pointer-table shard lock. `set_enabled` / `reset` /
// `snapshot` must only be called while no instrumented code is running
// (between trials / runs). Scope tags must be string literals.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace sld::obs {

/// Number of power-of-two size classes tracked per scope: class 0 is
/// sizes <= 16 bytes, class i is sizes <= 16 << i, the last class is
/// everything larger (>= 512 KiB).
inline constexpr std::size_t kMemSizeClasses = 16;

/// Aggregated allocation statistics for one scope tag (one thread's view,
/// or the cross-thread merge).
struct MemScopeStats {
  std::uint64_t allocs = 0;
  std::uint64_t frees = 0;
  std::uint64_t alloc_bytes = 0;
  std::uint64_t freed_bytes = 0;
  /// alloc_bytes - freed_bytes as seen by this thread; cross-thread frees
  /// of scoped pointers can drive a single thread's value negative, but
  /// the merged sum is the true global live-byte count.
  std::int64_t live_bytes = 0;
  /// High-water mark of live_bytes since thread start (or the last
  /// `reset_thread_peaks`). Merged across threads by summing — an upper
  /// bound, not an exact global peak; excluded from exact gates.
  std::int64_t peak_live_bytes = 0;
  std::array<std::uint64_t, kMemSizeClasses> size_class{};

  void merge(const MemScopeStats& other);
};

/// One scope's stats with its tag, as returned by snapshots.
struct MemScopeSnapshot {
  std::string name;
  MemScopeStats stats;
};

/// Per-trial roll-up of memstats plus the sim/scheduler/channel hot-path
/// counters — the block `BENCH_*.json` reports and `bench_compare.py
/// --exact` gates. All integer fields except `peak_live_bytes` are exact
/// deterministic functions of (config, seed), identical at any `--jobs N`.
struct MemHotTotals {
  bool enabled = false;
  std::uint64_t allocs = 0;
  std::uint64_t alloc_bytes = 0;
  std::uint64_t frees = 0;
  std::uint64_t freed_bytes = 0;
  std::uint64_t peak_live_bytes = 0;  // summed per-thread peaks (approx)
  std::uint64_t max_queue_depth = 0;
  double queue_depth_p99 = 0.0;
  std::uint64_t sift_up_steps = 0;
  std::uint64_t sift_down_steps = 0;
  std::uint64_t scans = 0;       // transmissions that scanned the topology
  std::uint64_t scan_nodes = 0;  // nodes examined across those scans
  double packet_lifetime_p99_ns = 0.0;

  double scan_fanout_mean() const {
    return scans ? static_cast<double>(scan_nodes) / static_cast<double>(scans)
                 : 0.0;
  }

  /// Accumulates another trial (sums counts, maxes depth/percentiles).
  void merge(const MemHotTotals& other);
};

class Memstats {
 public:
  /// Hot-path gate: one relaxed load. False (the default) means the
  /// replaced operator new/delete are passthroughs to malloc/free.
  static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Turns allocation tracking on/off. Only flip while no instrumented
  /// code is running. Enabling is sticky for the delete path: once any
  /// tracking happened, frees keep consulting the pointer table so
  /// pointers allocated under tracking are always accounted (and never
  /// leak stale table entries into reused addresses).
  static void set_enabled(bool on);

  /// True once set_enabled(true) has ever been called in this process.
  static bool ever_enabled() {
    return ever_enabled_.load(std::memory_order_relaxed);
  }

  /// The calling thread's stats for one scope tag (zeroes if the scope
  /// has not recorded on this thread). No allocation.
  static MemScopeStats thread_totals_for(const char* tag);

  /// Sets every scope's peak_live_bytes to its current live_bytes on the
  /// calling thread — called at trial start so the end-of-trial peak is
  /// the trial's own high-water mark.
  static void reset_thread_peaks();

  /// Cross-thread merge (live threads + retired accumulator), sorted by
  /// scope name.
  static std::vector<MemScopeSnapshot> snapshot();

  /// The snapshot as one JSON document:
  ///   {"schema":"sld-memstats/v1","scopes":[{"name":..,"allocs":..,
  ///    "frees":..,"alloc_bytes":..,"freed_bytes":..,"live_bytes":..,
  ///    "peak_live_bytes":..,"size_class":[..16..]},..]}
  static std::string snapshot_json();

  /// Flat per-scope table with size-class sparklines, for humans.
  static std::string format_table();

  /// Zeroes every thread's stats and the retired accumulator. Pointer-
  /// table entries survive (their future frees just find no live scope
  /// row to debit, which is the correct post-reset accounting). Only call
  /// while no instrumented code is running.
  static void reset();

  // --- internals used by MemScope and the allocation hooks -------------

  /// Pushes `tag` as the calling thread's innermost scope; returns the
  /// previous tag (restored by pop).
  static const char* push_scope(const char* tag);
  static void pop_scope(const char* prev);

 private:
  static std::atomic<bool> enabled_;
  static std::atomic<bool> ever_enabled_;
};

/// Size class of an allocation: 0 for <=16 bytes, doubling per class,
/// kMemSizeClasses-1 for everything >= 512 KiB.
std::size_t mem_size_class(std::size_t size);

/// Current peak resident set size of the process in KiB (getrusage
/// ru_maxrss). A host measurement — monotone within a run but NOT a
/// deterministic function of the seed; only sampled behind explicitly
/// opted-in telemetry (`TimeseriesOptions::sample_rss`).
std::uint64_t current_rss_kb();

/// RAII scope tag. Use through SLD_MEM_SCOPE; the tag must be a literal.
class MemScope {
 public:
  explicit MemScope(const char* tag) {
    if (!Memstats::enabled()) return;
    prev_ = Memstats::push_scope(tag);
    pushed_ = true;
  }
  ~MemScope() {
    if (pushed_) Memstats::pop_scope(prev_);
  }
  MemScope(const MemScope&) = delete;
  MemScope& operator=(const MemScope&) = delete;

 private:
  const char* prev_ = nullptr;
  bool pushed_ = false;
};

#define SLD_MEM_CONCAT2(a, b) a##b
#define SLD_MEM_CONCAT(a, b) SLD_MEM_CONCAT2(a, b)
/// Attributes heap allocations in the enclosing scope to `tag` (a string
/// literal naming a subsystem: "scheduler", "channel", "messages", ...).
#define SLD_MEM_SCOPE(tag) \
  ::sld::obs::MemScope SLD_MEM_CONCAT(sld_mem_scope_, __LINE__)(tag)

}  // namespace sld::obs
