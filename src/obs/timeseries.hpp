// Streaming time-series telemetry (the observability subsystem's temporal
// half; obs/metrics.hpp holds end-of-trial aggregates, obs/trace.hpp the
// per-event stream — this layer sits between them).
//
// A TimeseriesSampler watches a MetricsRegistry and, at a fixed sim-time
// cadence, closes *windows*: [t0 + k*cadence, t0 + (k+1)*cadence). At each
// close it snapshots every registered counter (cumulative value plus the
// per-window delta — the derived rate numerator), gauge, and histogram
// quantile set into a WindowSample, keeps the last `ring_capacity` samples
// in a bounded ring (eviction-accounted, the chaos campaign's forensic
// tail), and optionally emits one schema-versioned `timeseries/v1` JSONL
// record per window to a TraceSink, alongside a `ts.meta` header per trial.
//
// The sampler is driven by observation, never by scheduling: the caller
// (typically a Scheduler time probe) calls advance_to(t) whenever the sim
// clock moves, and the sampler closes every window whose end has passed.
// It draws no randomness, schedules no events, and allocates nothing when
// no window closes — a run with a sampler attached is bit-for-bit
// identical to one without (the same discipline as tracing/profiling).
//
// Time is plain int64 nanoseconds, not sim::SimTime: obs builds below sim.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sld::obs {

/// Telemetry knobs carried by SystemConfig. Disabled (the default) means
/// no sampler is constructed at all.
struct TimeseriesOptions {
  bool enabled = false;
  /// Window length, sim nanoseconds.
  std::int64_t cadence_ns = 250'000'000;
  /// Retained windows; older ones are evicted (and counted).
  std::size_t ring_capacity = 64;
  /// `timeseries/v1` JSONL destination (non-owning; must outlive every
  /// trial using it). nullptr keeps the ring without emitting a stream.
  TraceSink* sink = nullptr;
  /// Sample peak process RSS into a `mem.rss_kb` gauge at every window
  /// close. Off by default: RSS is host state, not simulation state, so
  /// sampling it makes the stream nondeterministic across machines (window
  /// *timing* stays deterministic either way).
  bool sample_rss = false;
};

/// One closed telemetry window. Instruments appear in registration order;
/// counters carry both the cumulative value at window close and the
/// per-window delta (rates are delta / window length).
struct WindowSample {
  std::uint64_t index = 0;
  std::int64_t t_start_ns = 0;
  std::int64_t t_end_ns = 0;
  std::vector<std::pair<std::string, std::uint64_t>> counters;  // cumulative
  std::vector<std::pair<std::string, std::uint64_t>> deltas;    // this window
  std::vector<std::pair<std::string, double>> gauges;
  struct HistQ {
    std::string name;
    std::uint64_t count = 0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
  };
  std::vector<HistQ> hists;

  std::int64_t duration_ns() const { return t_end_ns - t_start_ns; }

  // Lookups by name (nullptr when the metric does not exist yet — a
  // registry can grow mid-trial and early windows predate late metrics).
  const std::uint64_t* counter(std::string_view name) const;
  const std::uint64_t* delta(std::string_view name) const;
  const double* gauge(std::string_view name) const;
  const HistQ* hist(std::string_view name) const;
  /// Per-second rate of a counter over this window (0 if absent).
  double rate_per_s(std::string_view name) const;
};

class TimeseriesSampler {
 public:
  /// `registry` and `sink` (optional) must outlive the sampler.
  TimeseriesSampler(const MetricsRegistry& registry,
                    const TimeseriesOptions& options);

  std::int64_t cadence_ns() const { return cadence_ns_; }

  /// Invoked with the window end time immediately before each snapshot —
  /// the system's chance to mirror live stats (channel counters, breaker
  /// state) into the registry. Must not mutate simulation state.
  void set_presample_hook(std::function<void(std::int64_t)> hook) {
    presample_ = std::move(hook);
  }

  /// Invoked with every closed window, after it entered the ring and the
  /// stream — the SLO monitor's feed.
  void set_window_observer(std::function<void(const WindowSample&)> observer) {
    observer_ = std::move(observer);
  }

  /// Starts the window grid at t0 and emits the `ts.meta` stream header.
  void begin(std::int64_t t0, std::uint64_t seed);

  /// Closes every window whose end is <= t (events happening exactly at a
  /// window's end belong to the next window: the caller advances the clock
  /// before executing them, so window contents are pre-t state).
  void advance_to(std::int64_t t);

  /// End of trial: closes complete windows through t, then one final
  /// partial window [last_end, t) if time stopped mid-window.
  void finish(std::int64_t t);

  bool begun() const { return begun_; }
  const std::deque<WindowSample>& ring() const { return ring_; }
  std::uint64_t windows_closed() const { return windows_closed_; }
  std::uint64_t evicted() const { return evicted_; }

  /// Human-readable dump of the last `n` ring windows (non-zero deltas and
  /// gauges only) — the chaos campaign's failure context.
  std::string render_tail(std::size_t n) const;

 private:
  void close_window(std::int64_t start, std::int64_t end);
  void emit_window(const WindowSample& w);

  const MetricsRegistry& registry_;
  TraceSink* sink_;
  std::int64_t cadence_ns_;
  std::size_t ring_capacity_;
  std::function<void(std::int64_t)> presample_;
  std::function<void(const WindowSample&)> observer_;
  bool begun_ = false;
  std::int64_t next_end_ = 0;
  std::uint64_t windows_closed_ = 0;
  std::uint64_t evicted_ = 0;
  std::deque<WindowSample> ring_;
  /// Counter values at the previous window close, by registration index
  /// (the registry is append-only, so indices are stable; counters
  /// registered mid-trial delta against an implicit previous value of 0).
  std::vector<std::uint64_t> prev_counters_;
};

}  // namespace sld::obs
