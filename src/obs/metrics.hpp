// Metrics registry (the observability subsystem's aggregate half; see
// obs/trace.hpp for the per-event half).
//
// Named counters, gauges, and fixed-bucket histograms, registered once and
// cheap to update on hot paths: call sites keep the returned reference and
// pay one add (or one bucket index) per update — no lookup, no allocation,
// no branching on configuration. Everything is deterministic: updates
// driven by the (deterministic) simulation produce identical snapshots for
// identical seeds; the only nondeterministic values are the wall-clock
// phase timers, which exist precisely to measure the host.
//
// `MetricsRegistry::snapshot_json()` renders one machine-readable JSON
// document (registration order, stable field order) that the trial runner
// attaches to `TrialSummary::metrics_json` and benches dump via --metrics.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace sld::obs {

/// Monotone event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written value (queue depths, phase timings, calibration constants).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Bucket-edge layout of a Histogram. Linear splits [lo, hi) into equal
/// widths; log (exponential) uses geometrically growing buckets, which
/// keeps relative resolution constant across value decades — the right
/// shape for RTT and residual latencies. Log requires lo > 0.
enum class HistogramScale { kLinear, kLog };

/// Fixed-bucket histogram over [lo, hi), linear or log-bucketed (see
/// HistogramScale). Samples outside the range are clamped into the
/// first/last bucket (the exact min/max are tracked separately, so the
/// tails stay honest). Percentiles are extracted by interpolation inside
/// the bucket that crosses the target rank — linear interpolation for
/// linear buckets, geometric for log buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bucket_count,
            HistogramScale scale = HistogramScale::kLinear);

  void observe(double x);

  std::uint64_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  HistogramScale scale() const { return scale_; }

  /// Bucket edges: bucket i covers [edge(i), edge(i+1)).
  double edge(std::size_t i) const;

  /// Quantile for p in [0, 1]; 0 when empty. p50/p90/p99 are the shorthands
  /// the snapshot emits.
  double percentile(double p) const;
  double p50() const { return percentile(0.50); }
  double p90() const { return percentile(0.90); }
  double p99() const { return percentile(0.99); }

  const std::vector<std::uint64_t>& buckets() const { return counts_; }

 private:
  double lo_;
  double hi_;
  double width_;        // linear: bucket width; log: log(hi/lo)/buckets
  HistogramScale scale_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t n_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Owns every metric of one trial. Lookups are by name; re-registering an
/// existing name returns the existing instrument (histogram shape params
/// are ignored on re-registration), so independent layers can share a
/// metric without coordination.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, double lo, double hi,
                       std::size_t bucket_count,
                       HistogramScale scale = HistogramScale::kLinear);

  /// One JSON document:
  ///   {"counters":{...},"gauges":{...},"histograms":{"name":
  ///     {"count":..,"mean":..,"min":..,"max":..,"p50":..,"p90":..,
  ///      "p99":..,"lo":..,"hi":..,"buckets":[..]}, ...}}
  /// Instruments appear in registration order.
  std::string snapshot_json() const;

  // Read-only enumeration in registration order (append-only, so indices
  // handed out here are stable for the registry's lifetime) — the
  // time-series sampler's snapshot walk.
  std::size_t counter_count() const { return counters_.size(); }
  std::size_t gauge_count() const { return gauges_.size(); }
  std::size_t histogram_count() const { return histograms_.size(); }
  template <typename Fn>  // Fn(const std::string& name, const Counter&)
  void for_each_counter(Fn&& fn) const {
    for (const auto& c : counters_) fn(c.name, *c.instrument);
  }
  template <typename Fn>  // Fn(const std::string& name, const Gauge&)
  void for_each_gauge(Fn&& fn) const {
    for (const auto& g : gauges_) fn(g.name, *g.instrument);
  }
  template <typename Fn>  // Fn(const std::string& name, const Histogram&)
  void for_each_histogram(Fn&& fn) const {
    for (const auto& h : histograms_) fn(h.name, *h.instrument);
  }

 private:
  template <typename T>
  struct Named {
    std::string name;
    std::unique_ptr<T> instrument;
  };
  std::vector<Named<Counter>> counters_;
  std::vector<Named<Gauge>> gauges_;
  std::vector<Named<Histogram>> histograms_;
  std::unordered_map<std::string, std::size_t> counter_index_;
  std::unordered_map<std::string, std::size_t> gauge_index_;
  std::unordered_map<std::string, std::size_t> histogram_index_;
};

/// Profiling hook: stores the elapsed wall-clock milliseconds into the
/// named gauge on destruction. Wrap each trial phase in one of these.
class ScopedTimerMs {
 public:
  ScopedTimerMs(MetricsRegistry& registry, const std::string& gauge_name)
      : gauge_(registry.gauge(gauge_name)),
        start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimerMs() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    gauge_.set(std::chrono::duration<double, std::milli>(elapsed).count());
  }
  ScopedTimerMs(const ScopedTimerMs&) = delete;
  ScopedTimerMs& operator=(const ScopedTimerMs&) = delete;

 private:
  Gauge& gauge_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace sld::obs
