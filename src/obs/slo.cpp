#include "obs/slo.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <utility>

namespace sld::obs {

namespace {

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char num[40];
  std::snprintf(num, sizeof(num), "%.10g", v);
  out += num;
}

void append_quoted(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

[[noreturn]] void fail(const std::string& rule, const std::string& why) {
  throw std::invalid_argument("SLO rule '" + rule + "': " + why);
}

std::vector<std::string> tokenize(const std::string& text) {
  std::vector<std::string> tokens;
  std::string cur;
  int paren_depth = 0;  // "burn(bad/total, 0.01)" is ONE token
  for (const char c : text) {
    if (c == '(') ++paren_depth;
    if (c == ')' && paren_depth > 0) --paren_depth;
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (paren_depth > 0) continue;  // swallow spaces inside parentheses
      if (!cur.empty()) tokens.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) tokens.push_back(std::move(cur));
  return tokens;
}

double parse_double(const std::string& rule, const std::string& what,
                    const std::string& text) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || !std::isfinite(v))
    fail(rule, what + " is not a number: '" + text + "'");
  return v;
}

std::size_t parse_count(const std::string& rule, const std::string& what,
                        const std::string& text) {
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || v < 1)
    fail(rule, what + " must be a positive integer: '" + text + "'");
  return static_cast<std::size_t>(v);
}

SloRule parse_rule(const std::string& text) {
  const std::vector<std::string> tokens = tokenize(text);
  if (tokens.size() < 4)
    throw std::invalid_argument(
        "SLO rule '" + text + "': expected 'name source(metric) cmp "
        "threshold [sustain=N] [clear=N]'");

  SloRule rule;
  rule.name = tokens[0];

  const std::string& src = tokens[1];
  const std::size_t open = src.find('(');
  if (open == std::string::npos || src.back() != ')')
    fail(rule.name, "source must be fn(metric): '" + src + "'");
  const std::string fn = src.substr(0, open);
  const std::string inner = src.substr(open + 1, src.size() - open - 2);
  if (fn == "rate") {
    rule.source = SloSource::kRate;
  } else if (fn == "total") {
    rule.source = SloSource::kTotal;
  } else if (fn == "gauge") {
    rule.source = SloSource::kGauge;
  } else if (fn == "p50") {
    rule.source = SloSource::kP50;
  } else if (fn == "p90") {
    rule.source = SloSource::kP90;
  } else if (fn == "p99") {
    rule.source = SloSource::kP99;
  } else if (fn == "burn") {
    rule.source = SloSource::kBurn;
  } else {
    fail(rule.name, "unknown source '" + fn +
                        "' (rate|total|gauge|p50|p90|p99|burn)");
  }
  if (rule.source == SloSource::kBurn) {
    const std::size_t slash = inner.find('/');
    const std::size_t comma = inner.find(',');
    if (slash == std::string::npos || comma == std::string::npos ||
        comma < slash)
      fail(rule.name, "burn wants burn(bad/total,objective): '" + src + "'");
    rule.metric = inner.substr(0, slash);
    rule.total_metric = inner.substr(slash + 1, comma - slash - 1);
    rule.objective =
        parse_double(rule.name, "burn objective", inner.substr(comma + 1));
    if (rule.objective <= 0.0) fail(rule.name, "burn objective must be > 0");
  } else {
    rule.metric = inner;
  }
  if (rule.metric.empty()) fail(rule.name, "empty metric name");

  const std::string& cmp = tokens[2];
  if (cmp == ">") {
    rule.cmp = SloCmp::kGt;
  } else if (cmp == ">=") {
    rule.cmp = SloCmp::kGe;
  } else if (cmp == "<") {
    rule.cmp = SloCmp::kLt;
  } else if (cmp == "<=") {
    rule.cmp = SloCmp::kLe;
  } else {
    fail(rule.name, "unknown comparator '" + cmp + "' (>|>=|<|<=)");
  }
  rule.threshold = parse_double(rule.name, "threshold", tokens[3]);

  for (std::size_t i = 4; i < tokens.size(); ++i) {
    const std::string& t = tokens[i];
    if (t.rfind("sustain=", 0) == 0) {
      rule.sustain_windows = parse_count(rule.name, "sustain", t.substr(8));
    } else if (t.rfind("clear=", 0) == 0) {
      rule.clear_windows = parse_count(rule.name, "clear", t.substr(6));
    } else {
      fail(rule.name, "unexpected token '" + t + "'");
    }
  }
  return rule;
}

}  // namespace

std::vector<SloRule> parse_slo_spec(const std::string& spec) {
  std::vector<SloRule> rules;
  std::string entry;
  const auto flush = [&] {
    // Strip comments and surrounding whitespace; skip blank entries.
    const std::size_t hash = entry.find('#');
    if (hash != std::string::npos) entry.erase(hash);
    const std::size_t first = entry.find_first_not_of(" \t");
    if (first == std::string::npos) {
      entry.clear();
      return;
    }
    const std::size_t last = entry.find_last_not_of(" \t");
    rules.push_back(parse_rule(entry.substr(first, last - first + 1)));
    entry.clear();
  };
  for (const char c : spec) {
    if (c == ';' || c == '\n') {
      flush();
    } else {
      entry += c;
    }
  }
  flush();
  return rules;
}

const char* slo_spec_grammar() {
  return "name source(metric) cmp threshold [sustain=N] [clear=N] where "
         "source is rate|total|gauge|p50|p90|p99 or burn(bad/total,obj), "
         "cmp is >|>=|<|<=; rules separated by ';' or newlines";
}

SloMonitor::SloMonitor(std::vector<SloRule> rules)
    : rules_(std::move(rules)), states_(rules_.size()) {}

std::size_t SloMonitor::active() const {
  std::size_t n = 0;
  for (const RuleState& s : states_)
    if (s.breached) ++n;
  return n;
}

SloMonitor::Eval SloMonitor::evaluate(const SloRule& rule,
                                      const WindowSample& w) const {
  Eval e;
  switch (rule.source) {
    case SloSource::kRate: {
      const std::uint64_t* d = w.delta(rule.metric);
      if (d == nullptr) return e;
      e.value = w.rate_per_s(rule.metric);
      break;
    }
    case SloSource::kTotal: {
      const std::uint64_t* c = w.counter(rule.metric);
      if (c == nullptr) return e;
      e.value = static_cast<double>(*c);
      break;
    }
    case SloSource::kGauge: {
      const double* g = w.gauge(rule.metric);
      if (g == nullptr) return e;
      e.value = *g;
      break;
    }
    case SloSource::kP50:
    case SloSource::kP90:
    case SloSource::kP99: {
      const WindowSample::HistQ* h = w.hist(rule.metric);
      if (h == nullptr) return e;
      e.value = rule.source == SloSource::kP50
                    ? h->p50
                    : rule.source == SloSource::kP90 ? h->p90 : h->p99;
      break;
    }
    case SloSource::kBurn: {
      const std::uint64_t* bad = w.delta(rule.metric);
      const std::uint64_t* total = w.delta(rule.total_metric);
      if (bad == nullptr || total == nullptr) return e;
      // Burn rate: observed bad fraction over the window, normalized by
      // the objective. An all-quiet window (total delta 0) burns nothing.
      const std::uint64_t denom = *total;
      e.value = denom == 0 ? 0.0
                           : (static_cast<double>(*bad) /
                              static_cast<double>(denom)) /
                                 rule.objective;
      break;
    }
  }
  e.defined = true;
  switch (rule.cmp) {
    case SloCmp::kGt:
      e.bad = e.value > rule.threshold;
      break;
    case SloCmp::kGe:
      e.bad = e.value >= rule.threshold;
      break;
    case SloCmp::kLt:
      e.bad = e.value < rule.threshold;
      break;
    case SloCmp::kLe:
      e.bad = e.value <= rule.threshold;
      break;
  }
  return e;
}

void SloMonitor::on_window(const WindowSample& w) {
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const SloRule& rule = rules_[i];
    RuleState& state = states_[i];
    const Eval e = evaluate(rule, w);
    // A window without the metric counts as good: the rule cannot breach
    // on signals that do not exist yet.
    const bool bad = e.defined && e.bad;
    if (!state.breached) {
      if (bad) {
        if (++state.bad_streak >= rule.sustain_windows) {
          state.breached = true;
          state.good_streak = 0;
          ++breaches_;
          fire(rule, state, /*breach=*/true, w, e.value);
        }
      } else {
        state.bad_streak = 0;
      }
    } else {
      if (!bad) {
        if (++state.good_streak >= rule.clear_windows) {
          state.breached = false;
          state.bad_streak = 0;
          ++recovers_;
          fire(rule, state, /*breach=*/false, w, e.value);
        }
      } else {
        state.good_streak = 0;
      }
    }
  }
}

void SloMonitor::fire(const SloRule& rule, const RuleState& state,
                      bool breach, const WindowSample& w, double value) {
  if (log_.size() < kMaxLog) {
    LogEntry entry;
    entry.rule = rule.name;
    entry.breach = breach;
    entry.t_ns = w.t_end_ns;
    entry.window = w.index;
    entry.value = value;
    log_.push_back(std::move(entry));
  } else {
    ++log_dropped_;
  }
  for (const Tracer& tracer : tracers_) {
    if (!tracer.on()) continue;
    Event e(breach ? "slo.breach" : "slo.recover", w.t_end_ns);
    e.f("rule", rule.name)
        .f("value", value)
        .f("threshold", rule.threshold)
        .f("window", w.index)
        .f("windows",
           static_cast<std::uint64_t>(breach ? state.bad_streak
                                             : state.good_streak));
    tracer.emit(std::move(e));
  }
}

std::string SloMonitor::verdict_json() const {
  std::string out;
  out.reserve(256);
  out += "{\"rules\":";
  out += std::to_string(rules_.size());
  out += ",\"breaches\":";
  out += std::to_string(breaches_);
  out += ",\"recovers\":";
  out += std::to_string(recovers_);
  out += ",\"active\":";
  out += std::to_string(active());
  out += ",\"healthy\":";
  out += healthy() ? "true" : "false";
  out += ",\"log\":[";
  for (std::size_t i = 0; i < log_.size(); ++i) {
    if (i) out += ',';
    const LogEntry& entry = log_[i];
    out += "{\"rule\":";
    append_quoted(out, entry.rule);
    out += ",\"kind\":";
    out += entry.breach ? "\"breach\"" : "\"recover\"";
    out += ",\"t\":";
    out += std::to_string(entry.t_ns);
    out += ",\"window\":";
    out += std::to_string(entry.window);
    out += ",\"value\":";
    append_number(out, entry.value);
    out += '}';
  }
  out += "],\"log_dropped\":";
  out += std::to_string(log_dropped_);
  out += '}';
  return out;
}

}  // namespace sld::obs
