#include "obs/profiler.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <functional>

namespace sld::obs {

std::atomic<bool> Profiler::enabled_{false};

struct Profiler::ThreadState {
  LiveNode root{"root", nullptr, 0, 0, {}};
  LiveNode* current = &root;
};

Profiler& Profiler::instance() {
  static Profiler profiler;
  return profiler;
}

Profiler::ThreadState& Profiler::local_state() {
  // The registration outlives every span on this thread; its destructor
  // runs at thread exit and folds the thread's tree into the retired
  // accumulator so pool workers neither leak registry slots nor lose
  // recorded spans when they are joined.
  struct Registration {
    Profiler* profiler = nullptr;
    ThreadState* state = nullptr;
    ~Registration() {
      if (profiler != nullptr) profiler->retire(state);
    }
  };
  thread_local Registration reg;
  if (reg.state == nullptr) {
    auto owned = std::make_unique<ThreadState>();
    reg.state = owned.get();
    reg.profiler = this;
    const std::lock_guard<std::mutex> lock(mutex_);
    threads_.push_back(std::move(owned));
  }
  return *reg.state;
}

Profiler::LiveNode* Profiler::enter(const char* name) {
  ThreadState& state = local_state();
  LiveNode* parent = state.current;
  for (const auto& child : parent->children) {
    // Names are literals: pointer identity almost always hits; strcmp
    // covers the same literal deduplicated differently across TUs.
    if (child->name == name || std::strcmp(child->name, name) == 0) {
      state.current = child.get();
      return child.get();
    }
  }
  auto node = std::make_unique<LiveNode>();
  node->name = name;
  node->parent = parent;
  LiveNode* raw = node.get();
  parent->children.push_back(std::move(node));
  state.current = raw;
  return raw;
}

void Profiler::exit(LiveNode* node, std::uint64_t elapsed_ns) {
  node->calls += 1;
  node->total_ns += elapsed_ns;
  local_state().current = node->parent;
}

void Profiler::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& thread : threads_) {
    thread->root.children.clear();
    thread->root.calls = 0;
    thread->root.total_ns = 0;
    thread->current = &thread->root;
  }
  retired_ = ProfileNode{};
  retired_.name = "root";
}

namespace {

void merge_live(const Profiler::LiveNode& live, ProfileNode& out) {
  out.calls += live.calls;
  out.total_ns += live.total_ns;
  for (const auto& live_child : live.children) {
    ProfileNode* slot = nullptr;
    for (auto& child : out.children) {
      if (child.name == live_child->name) {
        slot = &child;
        break;
      }
    }
    if (slot == nullptr) {
      out.children.emplace_back();
      slot = &out.children.back();
      slot->name = live_child->name;
    }
    merge_live(*live_child, *slot);
  }
}

/// Name-keyed merge of one already-aggregated tree into another (the
/// retired accumulator into a snapshot root).
void merge_profile(const ProfileNode& from, ProfileNode& out) {
  out.calls += from.calls;
  out.total_ns += from.total_ns;
  for (const auto& from_child : from.children) {
    ProfileNode* slot = nullptr;
    for (auto& child : out.children) {
      if (child.name == from_child.name) {
        slot = &child;
        break;
      }
    }
    if (slot == nullptr) {
      out.children.emplace_back();
      slot = &out.children.back();
      slot->name = from_child.name;
    }
    merge_profile(from_child, *slot);
  }
}

void finalize(ProfileNode& node) {
  std::sort(node.children.begin(), node.children.end(),
            [](const ProfileNode& a, const ProfileNode& b) {
              return a.name < b.name;
            });
  std::uint64_t child_total = 0;
  for (auto& child : node.children) {
    finalize(child);
    child_total += child.total_ns;
  }
  node.self_ns = node.total_ns > child_total ? node.total_ns - child_total
                                             : 0;
}

void append_node_json(std::string& out, const ProfileNode& node) {
  out += "{\"name\":\"";
  out += node.name;  // span names are literals: no escaping needed
  out += "\",\"calls\":";
  out += std::to_string(node.calls);
  out += ",\"total_ns\":";
  out += std::to_string(node.total_ns);
  out += ",\"self_ns\":";
  out += std::to_string(node.self_ns);
  out += ",\"children\":[";
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    if (i) out += ',';
    append_node_json(out, node.children[i]);
  }
  out += "]}";
}

void collect_rows(const ProfileNode& node, std::vector<ProfileRow>& rows) {
  for (const auto& child : node.children) {
    ProfileRow* slot = nullptr;
    for (auto& row : rows) {
      if (row.name == child.name) {
        slot = &row;
        break;
      }
    }
    if (slot == nullptr) {
      rows.emplace_back();
      slot = &rows.back();
      slot->name = child.name;
    }
    slot->calls += child.calls;
    slot->total_ns += child.total_ns;
    slot->self_ns += child.self_ns;
    collect_rows(child, rows);
  }
}

}  // namespace

void Profiler::retire(ThreadState* state) {
  const std::lock_guard<std::mutex> lock(mutex_);
  merge_live(state->root, retired_);
  for (auto it = threads_.begin(); it != threads_.end(); ++it) {
    if (it->get() == state) {
      threads_.erase(it);
      break;
    }
  }
}

ProfileNode Profiler::snapshot() const {
  ProfileNode root;
  root.name = "root";
  const std::lock_guard<std::mutex> lock(mutex_);
  merge_profile(retired_, root);
  for (const auto& thread : threads_) merge_live(thread->root, root);
  // The synthetic root never runs as a span; its counters stay zero.
  root.calls = 0;
  root.total_ns = 0;
  finalize(root);
  root.self_ns = 0;
  return root;
}

std::string Profiler::snapshot_json() const {
  const ProfileNode root = snapshot();
  std::string out;
  out.reserve(1024);
  out += "{\"schema\":\"sld-profile/v1\",\"spans\":[";
  for (std::size_t i = 0; i < root.children.size(); ++i) {
    if (i) out += ',';
    append_node_json(out, root.children[i]);
  }
  out += "]}";
  return out;
}

std::vector<ProfileRow> Profiler::flat_rows() const {
  const ProfileNode root = snapshot();
  std::vector<ProfileRow> rows;
  collect_rows(root, rows);
  std::sort(rows.begin(), rows.end(),
            [](const ProfileRow& a, const ProfileRow& b) {
              if (a.self_ns != b.self_ns) return a.self_ns > b.self_ns;
              return a.name < b.name;
            });
  return rows;
}

std::string Profiler::format_table(std::size_t max_rows) const {
  const auto rows = flat_rows();
  std::string out = "# profile: top self-time spans\n";
  char line[160];
  std::snprintf(line, sizeof(line), "%-32s %12s %14s %14s\n", "span",
                "calls", "self_ms", "total_ms");
  out += line;
  const std::size_t shown = std::min(max_rows, rows.size());
  for (std::size_t i = 0; i < shown; ++i) {
    const auto& row = rows[i];
    std::snprintf(line, sizeof(line), "%-32s %12llu %14.3f %14.3f\n",
                  row.name.c_str(),
                  static_cast<unsigned long long>(row.calls),
                  static_cast<double>(row.self_ns) / 1e6,
                  static_cast<double>(row.total_ns) / 1e6);
    out += line;
  }
  if (rows.size() > shown) {
    std::snprintf(line, sizeof(line), "# ... %zu more spans\n",
                  rows.size() - shown);
    out += line;
  }
  return out;
}

}  // namespace sld::obs
