#include "obs/trace.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace sld::obs {

JsonlSink::JsonlSink(std::ostream& os) : os_(&os) {}

JsonlSink::JsonlSink(const std::string& path)
    : owned_(std::make_unique<std::ofstream>(path,
                                             std::ios::out | std::ios::trunc)),
      os_(owned_.get()) {
  if (!owned_->is_open())
    throw std::runtime_error("JsonlSink: cannot open " + path);
}

void JsonlSink::write(std::string_view line) {
  os_->write(line.data(), static_cast<std::streamsize>(line.size()));
  os_->put('\n');
  ++records_;
}

namespace {
void append_escaped(std::string& buf, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        buf += "\\\"";
        break;
      case '\\':
        buf += "\\\\";
        break;
      case '\n':
        buf += "\\n";
        break;
      case '\r':
        buf += "\\r";
        break;
      case '\t':
        buf += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char esc[8];
          std::snprintf(esc, sizeof(esc), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          buf += esc;
        } else {
          buf += c;
        }
    }
  }
}
}  // namespace

Event::Event(std::string_view type, std::int64_t t_ns) {
  buf_.reserve(128);
  buf_ += "{\"t\":";
  buf_ += std::to_string(t_ns);
  buf_ += ",\"e\":\"";
  append_escaped(buf_, type);
  buf_ += '"';
}

void Event::key_prefix(std::string_view key) {
  buf_ += ",\"";
  append_escaped(buf_, key);
  buf_ += "\":";
}

Event& Event::f(std::string_view key, std::string_view v) {
  key_prefix(key);
  buf_ += '"';
  append_escaped(buf_, v);
  buf_ += '"';
  return *this;
}

Event& Event::f(std::string_view key, bool v) {
  key_prefix(key);
  buf_ += v ? "true" : "false";
  return *this;
}

Event& Event::f(std::string_view key, double v) {
  key_prefix(key);
  if (!std::isfinite(v)) {
    buf_ += "null";  // NaN/Inf are not representable in JSON
    return *this;
  }
  char num[40];
  std::snprintf(num, sizeof(num), "%.10g", v);
  buf_ += num;
  return *this;
}

Event& Event::f(std::string_view key, std::int64_t v) {
  key_prefix(key);
  buf_ += std::to_string(v);
  return *this;
}

Event& Event::f(std::string_view key, std::uint64_t v) {
  key_prefix(key);
  buf_ += std::to_string(v);
  return *this;
}

Event& Event::raw(std::string_view key, std::string_view json) {
  key_prefix(key);
  buf_ += json;
  return *this;
}

std::string Event::finish() {
  buf_ += '}';
  return std::move(buf_);
}

}  // namespace sld::obs
