// Hierarchical scoped profiler (the observability subsystem's where-did-
// the-time-go half; see obs/trace.hpp for events and obs/metrics.hpp for
// aggregates).
//
// Instrumented code wraps a region in `SLD_PROF_SCOPE("name")`: an RAII
// span that records wall-clock time into a per-thread call tree keyed by
// the span's position in the dynamic call stack. The profiler is OFF by
// default and follows the same cached-boolean gating discipline as
// `Tracer`: a disabled span is one relaxed atomic load and a branch — no
// clock is read, no allocation happens, and no randomness is drawn, so a
// profiled run and an unprofiled run of the same seed produce bit-for-bit
// identical simulation results (tests/test_profiler.cpp asserts this).
//
// Each thread owns its own tree (registered once, under a mutex, on the
// thread's first span), so spans never contend and concurrent trials on
// different workers can never interleave into one call tree; `snapshot()`
// merges the per-thread trees by span name into one stable aggregate
// whose children are sorted lexicographically. When a registered thread
// exits (e.g. a WorkStealingPool worker at pool teardown), its tree is
// merged into a retired accumulator under the registry mutex and its
// per-thread state is freed — so snapshots survive worker churn and the
// registry does not grow without bound across pooled experiment runs.
// `snapshot_json()` renders the merge as one schema-versioned JSON
// document ("sld-profile/v1"); `format_table()` renders a flat "top
// self-time" view for humans.
//
// Thread-safety contract: enter/exit touch only the calling thread's
// tree. `snapshot` / `reset` / `set_enabled` must only be called while no
// span is live on any thread (between trials / runs); the trial executor
// guarantees this because `WorkStealingPool::run` returning happens-after
// every task's spans closed. Span names must be string literals (the tree
// stores the pointer, not a copy).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace sld::obs {

/// One node of an aggregated (merged, name-sorted) profile snapshot.
struct ProfileNode {
  std::string name;
  std::uint64_t calls = 0;
  /// Total wall time inside this span, children included, nanoseconds.
  std::uint64_t total_ns = 0;
  /// total_ns minus the children's total_ns (clamped at zero).
  std::uint64_t self_ns = 0;
  std::vector<ProfileNode> children;
};

/// One row of the flat "top self-time" view: the same span name summed
/// over every position it appears at in the tree.
struct ProfileRow {
  std::string name;
  std::uint64_t calls = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t self_ns = 0;
};

class Profiler {
 public:
  /// The process-wide profiler every SLD_PROF_SCOPE records into.
  static Profiler& instance();

  /// Hot-path gate: one relaxed load. False (the default) means spans do
  /// nothing at all.
  static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Turns span recording on/off. Only flip while no span is live.
  static void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Zeroes every thread's tree (registered threads stay registered).
  /// Only call while no span is live.
  void reset();

  /// Merges the per-thread trees into one aggregate tree. The returned
  /// root is synthetic ("root", zero times); its children are the
  /// top-level spans, each level sorted by name for schema stability.
  ProfileNode snapshot() const;

  /// The snapshot as one JSON document:
  ///   {"schema":"sld-profile/v1","spans":[{"name":..,"calls":..,
  ///    "total_ns":..,"self_ns":..,"children":[..]},..]}
  std::string snapshot_json() const;

  /// Flat top-self-time table (spans summed by name across the tree,
  /// sorted by self time descending), rendered for humans.
  std::string format_table(std::size_t max_rows = 24) const;

  /// The flat rows behind format_table (sorted by self_ns descending,
  /// name ascending on ties).
  std::vector<ProfileRow> flat_rows() const;

  // --- internals used by ProfileScope (public for the macro, not API) ---

  /// A node of a thread's live tree. Children are few per node, so lookup
  /// is a linear scan with pointer-identity fast path (names are literals).
  struct LiveNode {
    const char* name;
    LiveNode* parent;
    std::uint64_t calls = 0;
    std::uint64_t total_ns = 0;
    std::vector<std::unique_ptr<LiveNode>> children;
  };

  /// Descends into (creating if needed) the child named `name` of the
  /// calling thread's current node and makes it current.
  LiveNode* enter(const char* name);

  /// Credits `elapsed_ns` to `node` and pops it (current = its parent).
  void exit(LiveNode* node, std::uint64_t elapsed_ns);

 private:
  struct ThreadState;
  ThreadState& local_state();
  /// Thread-exit hook: folds the exiting thread's tree into `retired_`
  /// and drops its registration. Called from the thread_local
  /// registration's destructor.
  void retire(ThreadState* state);

  static std::atomic<bool> enabled_;

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<ThreadState>> threads_;
  /// Name-merged trees of threads that have exited (synthetic root).
  ProfileNode retired_;
};

/// RAII span. Use through SLD_PROF_SCOPE; the name must be a literal.
class ProfileScope {
 public:
  explicit ProfileScope(const char* name) {
    if (!Profiler::enabled()) return;
    node_ = Profiler::instance().enter(name);
    start_ = std::chrono::steady_clock::now();
  }
  ~ProfileScope() {
    if (node_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    Profiler::instance().exit(
        node_, static_cast<std::uint64_t>(
                   std::chrono::duration_cast<std::chrono::nanoseconds>(
                       elapsed)
                       .count()));
  }
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  Profiler::LiveNode* node_ = nullptr;
  std::chrono::steady_clock::time_point start_;
};

#define SLD_PROF_CONCAT2(a, b) a##b
#define SLD_PROF_CONCAT(a, b) SLD_PROF_CONCAT2(a, b)
/// Profiles the enclosing scope under `name` (a string literal).
#define SLD_PROF_SCOPE(name) \
  ::sld::obs::ProfileScope SLD_PROF_CONCAT(sld_prof_scope_, __LINE__)(name)

}  // namespace sld::obs
