#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace sld::obs {

Histogram::Histogram(double lo, double hi, std::size_t bucket_count,
                     HistogramScale scale)
    : lo_(lo), hi_(hi), scale_(scale) {
  if (!(hi > lo))
    throw std::invalid_argument("Histogram: hi must exceed lo");
  if (bucket_count == 0)
    throw std::invalid_argument("Histogram: need at least one bucket");
  if (scale == HistogramScale::kLog && !(lo > 0.0))
    throw std::invalid_argument("Histogram: log scale requires lo > 0");
  width_ = scale == HistogramScale::kLog
               ? std::log(hi / lo) / static_cast<double>(bucket_count)
               : (hi - lo) / static_cast<double>(bucket_count);
  counts_.assign(bucket_count, 0);
}

double Histogram::edge(std::size_t i) const {
  const double steps = static_cast<double>(i);
  return scale_ == HistogramScale::kLog ? lo_ * std::exp(steps * width_)
                                        : lo_ + steps * width_;
}

void Histogram::observe(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  // Non-positive samples in log mode clamp into the first bucket (the
  // same treatment as any below-range sample).
  const double offset =
      scale_ == HistogramScale::kLog
          ? (x > 0.0 ? std::log(x / lo_) / width_ : -1.0)
          : (x - lo_) / width_;
  std::size_t idx = 0;
  if (offset > 0.0) {
    idx = std::min(static_cast<std::size_t>(offset), counts_.size() - 1);
  }
  ++counts_[idx];
}

double Histogram::percentile(double p) const {
  if (n_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const double target = p * static_cast<double>(n_);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double before = static_cast<double>(cum);
    cum += counts_[i];
    if (static_cast<double>(cum) >= target) {
      const double frac =
          (target - before) / static_cast<double>(counts_[i]);
      const double steps = static_cast<double>(i) + frac;
      // Interpolation matches the bucket layout: linear inside linear
      // buckets, geometric inside log buckets.
      const double v = scale_ == HistogramScale::kLog
                           ? lo_ * std::exp(steps * width_)
                           : lo_ + steps * width_;
      // The clamped tails are reported with the exact extrema.
      return std::clamp(v, min_, max_);
    }
  }
  return max_;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const auto it = counter_index_.find(name);
  if (it != counter_index_.end())
    return *counters_[it->second].instrument;
  counter_index_.emplace(name, counters_.size());
  counters_.push_back({name, std::make_unique<Counter>()});
  return *counters_.back().instrument;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const auto it = gauge_index_.find(name);
  if (it != gauge_index_.end()) return *gauges_[it->second].instrument;
  gauge_index_.emplace(name, gauges_.size());
  gauges_.push_back({name, std::make_unique<Gauge>()});
  return *gauges_.back().instrument;
}

Histogram& MetricsRegistry::histogram(const std::string& name, double lo,
                                      double hi, std::size_t bucket_count,
                                      HistogramScale scale) {
  const auto it = histogram_index_.find(name);
  if (it != histogram_index_.end())
    return *histograms_[it->second].instrument;
  histogram_index_.emplace(name, histograms_.size());
  histograms_.push_back(
      {name, std::make_unique<Histogram>(lo, hi, bucket_count, scale)});
  return *histograms_.back().instrument;
}

namespace {
void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char num[40];
  std::snprintf(num, sizeof(num), "%.10g", v);
  out += num;
}

void append_quoted(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}
}  // namespace

std::string MetricsRegistry::snapshot_json() const {
  std::string out;
  out.reserve(1024);
  out += "{\"counters\":{";
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    if (i) out += ',';
    append_quoted(out, counters_[i].name);
    out += ':';
    out += std::to_string(counters_[i].instrument->value());
  }
  out += "},\"gauges\":{";
  for (std::size_t i = 0; i < gauges_.size(); ++i) {
    if (i) out += ',';
    append_quoted(out, gauges_[i].name);
    out += ':';
    append_number(out, gauges_[i].instrument->value());
  }
  out += "},\"histograms\":{";
  for (std::size_t i = 0; i < histograms_.size(); ++i) {
    if (i) out += ',';
    const Histogram& h = *histograms_[i].instrument;
    append_quoted(out, histograms_[i].name);
    out += ":{\"count\":";
    out += std::to_string(h.count());
    out += ",\"mean\":";
    append_number(out, h.mean());
    out += ",\"min\":";
    append_number(out, h.min());
    out += ",\"max\":";
    append_number(out, h.max());
    out += ",\"p50\":";
    append_number(out, h.p50());
    out += ",\"p90\":";
    append_number(out, h.p90());
    out += ",\"p99\":";
    append_number(out, h.p99());
    out += ",\"lo\":";
    append_number(out, h.lo());
    out += ",\"hi\":";
    append_number(out, h.hi());
    out += ",\"scale\":";
    out += h.scale() == HistogramScale::kLog ? "\"log\"" : "\"linear\"";
    out += ",\"buckets\":[";
    const auto& buckets = h.buckets();
    for (std::size_t b = 0; b < buckets.size(); ++b) {
      if (b) out += ',';
      out += std::to_string(buckets[b]);
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

}  // namespace sld::obs
