#include "analysis/formulas.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/stats.hpp"

namespace sld::analysis {

void ModelParams::validate() const {
  if (beacon_count > total_nodes)
    throw std::invalid_argument("ModelParams: N_b > N");
  if (malicious_count > beacon_count)
    throw std::invalid_argument("ModelParams: N_a > N_b");
  if (wormhole_detection_rate < 0.0 || wormhole_detection_rate > 1.0)
    throw std::invalid_argument("ModelParams: p_d outside [0, 1]");
  if (detecting_ids == 0)
    throw std::invalid_argument("ModelParams: m must be >= 1");
  if (total_nodes == 0)
    throw std::invalid_argument("ModelParams: N must be >= 1");
}

namespace {
void check_probability(double P, const char* what) {
  if (P < 0.0 || P > 1.0)
    throw std::invalid_argument(std::string(what) + ": outside [0, 1]");
}
}  // namespace

double attack_effectiveness(double p_n, double p_w, double p_l) {
  check_probability(p_n, "attack_effectiveness: p_n");
  check_probability(p_w, "attack_effectiveness: p_w");
  check_probability(p_l, "attack_effectiveness: p_l");
  return (1.0 - p_n) * (1.0 - p_w) * (1.0 - p_l);
}

double detection_probability(double P, std::size_t m) {
  check_probability(P, "detection_probability: P");
  if (m == 0) throw std::invalid_argument("detection_probability: m == 0");
  return 1.0 - std::pow(1.0 - P, static_cast<double>(m));
}

double alert_probability(const ModelParams& p, double P) {
  p.validate();
  const double pr = detection_probability(P, p.detecting_ids);
  return static_cast<double>(p.benign_beacons()) * pr /
         static_cast<double>(p.total_nodes);
}

double alert_count_pmf(const ModelParams& p, double P, std::size_t i) {
  const double pa = alert_probability(p, P);
  return util::binomial_pmf(p.requesters_per_beacon, i, pa);
}

double revocation_probability(const ModelParams& p, double P) {
  const double pa = alert_probability(p, P);
  return util::binomial_tail_above(p.requesters_per_beacon, p.alert_threshold,
                                   pa);
}

double affected_nonbeacon_nodes(const ModelParams& p, double P) {
  check_probability(P, "affected_nonbeacon_nodes: P");
  const double pd = revocation_probability(p, P);
  return P * (1.0 - pd) * static_cast<double>(p.requesters_per_beacon) *
         static_cast<double>(p.nonbeacon_nodes()) /
         static_cast<double>(p.total_nodes);
}

double max_affected_nonbeacon_nodes(const ModelParams& p, double* argmax_P) {
  struct Ctx {
    const ModelParams* params;
  } ctx{&p};
  const auto f = [](double P, const void* raw) {
    const auto* c = static_cast<const Ctx*>(raw);
    return affected_nonbeacon_nodes(*c->params, P);
  };
  const double best_P = util::argmax_scalar(0.0, 1.0, 201, f, &ctx);
  if (argmax_P != nullptr) *argmax_P = best_P;
  return affected_nonbeacon_nodes(p, best_P);
}

double false_positive_count(const ModelParams& p) {
  p.validate();
  const double wormhole_alerts =
      (1.0 - p.wormhole_detection_rate) *
      static_cast<double>(p.wormhole_count);
  const double collusion_alerts =
      static_cast<double>(p.malicious_count) *
      static_cast<double>(p.report_quota + 1);
  return (wormhole_alerts + collusion_alerts) /
         static_cast<double>(p.alert_threshold + 1);
}

double report_increment_prob_malicious(const ModelParams& p, double P) {
  const double pr = detection_probability(P, p.detecting_ids);
  const double pd = revocation_probability(p, P);
  return pr * static_cast<double>(p.requesters_per_beacon) /
         static_cast<double>(p.total_nodes) * (1.0 - pd);
}

double report_increment_prob_wormhole(const ModelParams& p) {
  p.validate();
  const double benign = static_cast<double>(p.benign_beacons());
  if (benign <= 0.0) return 0.0;
  const double nf = std::min(false_positive_count(p), benign);
  const double prob =
      2.0 * (1.0 - p.wormhole_detection_rate) * (benign - nf) /
      (benign * benign);
  return std::clamp(prob, 0.0, 1.0);
}

double report_counter_pmf(const ModelParams& p, double P, std::size_t i) {
  const double p1 = report_increment_prob_malicious(p, P);
  const double p2 = report_increment_prob_wormhole(p);
  // Convolution of Bin(N_a, p1) and Bin(N_w, p2).
  double sum = 0.0;
  const std::size_t j_max = std::min<std::size_t>(i, p.malicious_count);
  for (std::size_t j = 0; j <= j_max; ++j) {
    const std::size_t k = i - j;
    if (k > p.wormhole_count) continue;
    sum += util::binomial_pmf(p.malicious_count, j, p1) *
           util::binomial_pmf(p.wormhole_count, k, p2);
  }
  return sum;
}

double report_counter_overflow_probability(const ModelParams& p, double P) {
  double cdf = 0.0;
  for (std::size_t i = 0; i <= p.report_quota; ++i)
    cdf += report_counter_pmf(p, P, i);
  return std::max(0.0, 1.0 - cdf);
}

std::optional<ThresholdChoice> choose_thresholds(
    const ModelParams& base, const ThresholdSearch& search) {
  if (search.tau2_min > search.tau2_max)
    throw std::invalid_argument("choose_thresholds: empty tau2 grid");
  if (search.damage_budget <= 0.0 || search.overflow_budget <= 0.0)
    throw std::invalid_argument("choose_thresholds: non-positive budget");

  std::optional<ThresholdChoice> best;
  for (std::uint32_t tau2 = search.tau2_min; tau2 <= search.tau2_max;
       ++tau2) {
    ModelParams p = base;
    p.alert_threshold = tau2;

    // Step 1 (§3.2): keep the attacker's best-case damage under budget.
    p.report_quota = search.tau1_max;  // quota not binding for N'
    double attacker_P = 0.0;
    const double damage = max_affected_nonbeacon_nodes(p, &attacker_P);
    if (damage > search.damage_budget) continue;

    // Step 2: smallest tau1 whose overflow probability is negligible at
    // the attacker's P (so honest alerts are not dropped).
    std::optional<std::uint32_t> tau1_pick;
    for (std::uint32_t tau1 = 0; tau1 <= search.tau1_max; ++tau1) {
      p.report_quota = tau1;
      if (report_counter_overflow_probability(p, attacker_P) <=
          search.overflow_budget) {
        tau1_pick = tau1;
        break;
      }
    }
    if (!tau1_pick) continue;

    // Step 3: among feasible pairs, minimize the false positives N_f.
    p.report_quota = *tau1_pick;
    ThresholdChoice choice;
    choice.tau1 = *tau1_pick;
    choice.tau2 = tau2;
    choice.attacker_P = attacker_P;
    choice.detection = revocation_probability(p, attacker_P);
    choice.max_damage = damage;
    choice.false_positives = false_positive_count(p);
    choice.quota_overflow =
        report_counter_overflow_probability(p, attacker_P);
    if (!best || choice.false_positives < best->false_positives)
      best = choice;
  }
  return best;
}

}  // namespace sld::analysis
