// Closed-form analytical model (paper §2.3 and §3.2). Every quantity the
// paper derives is implemented here with the paper's own notation quoted;
// the figure benches evaluate these directly and the simulation benches
// compare against them.
//
// Notation:
//   N    total sensor nodes             N_b   beacon nodes
//   N_a  malicious beacon nodes         N_w   wormholes (benign pairs)
//   p_d  wormhole detection rate        m     detecting IDs per beacon
//   N_c  requesting nodes per beacon    tau1  report-counter quota
//   tau2 alert threshold                P     attack effectiveness
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>

namespace sld::analysis {

struct ModelParams {
  std::size_t total_nodes = 1000;           // N
  std::size_t beacon_count = 100;           // N_b
  std::size_t malicious_count = 10;         // N_a
  std::size_t wormhole_count = 10;          // N_w
  double wormhole_detection_rate = 0.9;     // p_d
  std::size_t detecting_ids = 8;            // m
  std::size_t requesters_per_beacon = 100;  // N_c
  std::uint32_t report_quota = 10;          // tau1
  std::uint32_t alert_threshold = 2;        // tau2

  /// Throws std::invalid_argument on inconsistent parameters.
  void validate() const;

  std::size_t benign_beacons() const { return beacon_count - malicious_count; }
  std::size_t nonbeacon_nodes() const { return total_nodes - beacon_count; }
};

/// P = (1 - p_n)(1 - p_w)(1 - p_l): the probability that a requester gets
/// the effective malicious signal and it survives both replay filters.
double attack_effectiveness(double p_n, double p_w, double p_l);

/// P_r = 1 - (1 - P)^m: probability a benign detecting node with m
/// detecting IDs detects a given malicious beacon (§2.3).
double detection_probability(double P, std::size_t m);

/// P_a = (N_b - N_a) P_r / N: probability that a given requester of a
/// malicious beacon is a benign beacon that reports an alert (§3.2).
double alert_probability(const ModelParams& p, double P);

/// P(i) = C(N_c, i) P_a^i (1 - P_a)^(N_c - i): exactly i alerts reported.
double alert_count_pmf(const ModelParams& p, double P, std::size_t i);

/// P_d = P[#alerts > tau2]: probability a malicious beacon is revoked.
double revocation_probability(const ModelParams& p, double P);

/// N' = P (1 - P_d) N_c (N - N_b) / N: expected number of requesting
/// non-beacon nodes still accepting the malicious signal after revocation.
double affected_nonbeacon_nodes(const ModelParams& p, double P);

/// max over P of N'(P); optionally returns the maximizing P. The paper's
/// Figures 9 and 14 assume the attacker plays this argmax.
double max_affected_nonbeacon_nodes(const ModelParams& p,
                                    double* argmax_P = nullptr);

/// N_f = ((1 - p_d) N_w + N_a (tau1 + 1)) / (tau2 + 1): worst-case number
/// of benign beacons revoked (wormhole false alerts + colluding floods).
double false_positive_count(const ModelParams& p);

/// P_1 = P_r (N_c / N) (1 - P_d): probability that a particular malicious
/// beacon causes one increment of a benign reporter's report counter.
double report_increment_prob_malicious(const ModelParams& p, double P);

/// P_2 = 2 (1 - p_d) (N_b - N_a - N_f) / (N_b - N_a)^2: probability that a
/// particular wormhole causes one increment of a benign reporter's report
/// counter.
double report_increment_prob_wormhole(const ModelParams& p);

/// P'(i): pmf of a benign beacon's report counter — the convolution of
/// Bin(N_a, P_1) and Bin(N_w, P_2) (§3.2).
double report_counter_pmf(const ModelParams& p, double P, std::size_t i);

/// P_o = P[report counter > tau1]: probability a benign beacon's honest
/// alerts start being dropped by the quota (Figure 10's y-axis).
double report_counter_overflow_probability(const ModelParams& p, double P);

/// --- The §3.2 threshold-selection procedure --------------------------
///
/// "We can then choose a set of tau2 that make the maximum number of
/// affected non-beacon nodes remain under a given value. For each of the
/// selected thresholds tau2, we configure threshold tau1 ... so that most
/// of the alerts from benign beacon nodes will not be ignored ... We then
/// choose a pair of thresholds that ... lead to the minimum N_f."

struct ThresholdChoice {
  std::uint32_t tau1 = 0;
  std::uint32_t tau2 = 0;
  /// Metrics at the attacker's damage-maximizing P under this pair.
  double attacker_P = 0.0;
  double detection = 0.0;          // P_d
  double max_damage = 0.0;         // max_P N'
  double false_positives = 0.0;    // N_f
  double quota_overflow = 0.0;     // P_o
};

struct ThresholdSearch {
  /// Candidate grids.
  std::uint32_t tau2_min = 1;
  std::uint32_t tau2_max = 6;
  std::uint32_t tau1_max = 40;
  /// Constraints: keep max_P N' under `damage_budget`, P_o under
  /// `overflow_budget`.
  double damage_budget = 5.0;
  double overflow_budget = 1e-4;
};

/// Runs the procedure over `base` (its tau1/tau2 fields are ignored).
/// Returns the feasible pair minimizing N_f, or nullopt if no pair in the
/// grid satisfies the budgets.
std::optional<ThresholdChoice> choose_thresholds(
    const ModelParams& base, const ThresholdSearch& search = {});

}  // namespace sld::analysis
