#include "check/invariant.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace sld::check {

namespace {
std::atomic<InvariantHandler> g_handler{&default_invariant_handler};
std::atomic<std::uint64_t> g_failures{0};
}  // namespace

void default_invariant_handler(const InvariantViolation& violation) {
  std::fprintf(stderr, "SLD_INVARIANT violated at %s:%d\n  condition: %s\n  %s\n",
               violation.file, violation.line, violation.condition,
               violation.message.c_str());
  std::fflush(stderr);
  std::abort();
}

InvariantHandler set_invariant_handler(InvariantHandler handler) {
  return g_handler.exchange(handler != nullptr ? handler
                                               : &default_invariant_handler);
}

std::uint64_t invariant_failure_count() {
  return g_failures.load(std::memory_order_relaxed);
}

void invariant_failed(const char* file, int line, const char* condition,
                      const std::string& message) {
  g_failures.fetch_add(1, std::memory_order_relaxed);
  InvariantViolation violation;
  violation.file = file;
  violation.line = line;
  violation.condition = condition;
  violation.message = message;
  g_handler.load()(violation);
}

}  // namespace sld::check
