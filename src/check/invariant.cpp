#include "check/invariant.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace sld::check {

namespace {
std::atomic<InvariantHandler> g_handler{&default_invariant_handler};
std::atomic<std::uint64_t> g_failures{0};
// Per-thread override and counter: plain (non-atomic) because each is only
// ever touched by its owning thread.
thread_local InvariantHandler t_handler = nullptr;
thread_local std::uint64_t t_failures = 0;
}  // namespace

void default_invariant_handler(const InvariantViolation& violation) {
  std::fprintf(stderr, "SLD_INVARIANT violated at %s:%d\n  condition: %s\n  %s\n",
               violation.file, violation.line, violation.condition,
               violation.message.c_str());
  std::fflush(stderr);
  std::abort();
}

InvariantHandler set_invariant_handler(InvariantHandler handler) {
  return g_handler.exchange(handler != nullptr ? handler
                                               : &default_invariant_handler);
}

InvariantHandler set_thread_invariant_handler(InvariantHandler handler) {
  InvariantHandler previous = t_handler;
  t_handler = handler;
  return previous;
}

std::uint64_t invariant_failure_count() {
  return g_failures.load(std::memory_order_relaxed);
}

std::uint64_t thread_invariant_failure_count() { return t_failures; }

void invariant_failed(const char* file, int line, const char* condition,
                      const std::string& message) {
  g_failures.fetch_add(1, std::memory_order_relaxed);
  ++t_failures;
  InvariantViolation violation;
  violation.file = file;
  violation.line = line;
  violation.condition = condition;
  violation.message = message;
  if (t_handler != nullptr) {
    t_handler(violation);
    return;
  }
  g_handler.load()(violation);
}

}  // namespace sld::check
