// Compile-time-gated runtime invariant checking.
//
// The paper's guarantees are stated as invariants — simulation time never
// runs backwards, packets are conserved across every fault outcome, alert
// counters are monotone and revocation fires exactly when a counter crosses
// tau2, a detector verdict always agrees with its measured-vs-expected
// evidence. `SLD_INVARIANT(cond, msg)` asserts one of them at the point in
// the code where it must hold.
//
// Build gating: the macro checks only when `SLD_INVARIANTS_ENABLED` is
// defined (CMake turns it on for Debug and Sanitize build types, or
// explicitly via -DSLD_INVARIANTS=ON). In Release the macro compiles to
// nothing — the condition and message are parsed and type-checked inside
// unevaluated `sizeof` operands but never executed, so Release binaries are
// bit-for-bit identical to binaries built before the check existed. Do not
// put side effects in either argument.
//
// Violation handling: the default handler prints `file:line: condition —
// message` to stderr and aborts (so CI and sanitizer runs fail loudly).
// Tests install a recording handler via ScopedInvariantHandler to assert
// that specific invariants do (or do not) fire without dying.
//
// The message argument is an ostream chain, evaluated only on failure:
//
//   SLD_INVARIANT(sent == delivered + lost,
//                 "conservation: sent=" << sent << " delivered=" << delivered);
#pragma once

#include <cstdint>
#include <sstream>
#include <string>

namespace sld::check {

/// Everything the failure site knows about one violated invariant.
struct InvariantViolation {
  const char* file = "";
  int line = 0;
  /// The stringified condition that evaluated false.
  const char* condition = "";
  /// The rendered message expression.
  std::string message;
};

/// Called for every violation. Must not return to resume normal execution
/// in production handlers (the default aborts); test handlers may return,
/// in which case execution continues past the failed check.
using InvariantHandler = void (*)(const InvariantViolation&);

/// Installs `handler` (nullptr restores the default) and returns the
/// previously installed one.
InvariantHandler set_invariant_handler(InvariantHandler handler);

/// Installs a handler for the CALLING THREAD only; while set (non-null) it
/// takes precedence over the process-wide handler for violations raised on
/// this thread. Parallel trial workers (chaos campaign `--jobs`, executor
/// tests) install one each so concurrent trials record their own failures
/// without clobbering a shared handler. Returns the thread's previous
/// override (nullptr when none was set).
InvariantHandler set_thread_invariant_handler(InvariantHandler handler);

/// Prints the violation to stderr and aborts. The initial handler.
void default_invariant_handler(const InvariantViolation& violation);

/// Total violations reported since process start (any handler, any
/// thread).
std::uint64_t invariant_failure_count();

/// Violations reported on the calling thread since it started — the
/// per-trial delta a parallel worker snapshots around its own trial.
std::uint64_t thread_invariant_failure_count();

/// The failure funnel the macro expands to; callable directly by tests.
void invariant_failed(const char* file, int line, const char* condition,
                      const std::string& message);

/// True when this translation unit was compiled with checks on. Reported
/// per-TU on purpose: tests use it to assert the build-appropriate macro
/// behaviour.
constexpr bool invariants_enabled() {
#if defined(SLD_INVARIANTS_ENABLED)
  return true;
#else
  return false;
#endif
}

/// RAII: installs a handler for one scope, restores the previous on exit.
class ScopedInvariantHandler {
 public:
  explicit ScopedInvariantHandler(InvariantHandler handler)
      : previous_(set_invariant_handler(handler)) {}
  ~ScopedInvariantHandler() { set_invariant_handler(previous_); }
  ScopedInvariantHandler(const ScopedInvariantHandler&) = delete;
  ScopedInvariantHandler& operator=(const ScopedInvariantHandler&) = delete;

 private:
  InvariantHandler previous_;
};

/// RAII: installs a thread-local handler override for one scope, restores
/// the thread's previous override on exit.
class ScopedThreadInvariantHandler {
 public:
  explicit ScopedThreadInvariantHandler(InvariantHandler handler)
      : previous_(set_thread_invariant_handler(handler)) {}
  ~ScopedThreadInvariantHandler() {
    set_thread_invariant_handler(previous_);
  }
  ScopedThreadInvariantHandler(const ScopedThreadInvariantHandler&) = delete;
  ScopedThreadInvariantHandler& operator=(const ScopedThreadInvariantHandler&) =
      delete;

 private:
  InvariantHandler previous_;
};

}  // namespace sld::check

#if defined(SLD_INVARIANTS_ENABLED)
#define SLD_INVARIANT(cond, msg)                                           \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::ostringstream sld_invariant_os_;                                \
      sld_invariant_os_ << msg;                                            \
      ::sld::check::invariant_failed(__FILE__, __LINE__, #cond,            \
                                     sld_invariant_os_.str());             \
    }                                                                      \
  } while (0)
#else
// Disabled: both operands stay type-checked (inside unevaluated sizeof) but
// generate no code and evaluate nothing.
#define SLD_INVARIANT(cond, msg)                                           \
  do {                                                                     \
    (void)sizeof(static_cast<bool>(cond));                                 \
    (void)sizeof([&](std::ostream& sld_invariant_os_) {                    \
      sld_invariant_os_ << msg;                                            \
    });                                                                    \
  } while (0)
#endif
