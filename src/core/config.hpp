// Top-level system configuration. Defaults reproduce the paper's §4 setup
// (see DESIGN.md "Recovered constants" for how each number was fixed):
// 1000 nodes in a 1000x1000 ft field, 100 beacons of which 10 compromised,
// 150 ft radio range, 4 ft maximum ranging error, m = 8 detecting IDs,
// p_d = 0.9 wormhole detection rate, one wormhole (100,100)-(800,700),
// thresholds tau1 = 10, tau2 = 2.
#pragma once

#include <cstdint>
#include <vector>

#include "attack/framing.hpp"
#include "attack/strategy.hpp"
#include "localization/fallback.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "sim/arq.hpp"
#include "sim/channel.hpp"
#include "sim/faults.hpp"
#include "ranging/rssi.hpp"
#include "ranging/rtt.hpp"
#include "ranging/toa.hpp"
#include "revocation/base_station.hpp"
#include "revocation/failover.hpp"
#include "revocation/shard.hpp"
#include "sim/deployment.hpp"
#include "sim/time.hpp"

namespace sld::core {

/// Which distance-measurement feature the deployment uses (paper §1 lists
/// RSSI, ToA, TDoA, AoA; §2.3 notes the detector works with any feature
/// that yields a bounded-error distance).
enum class RangingType {
  kRssi,
  kToa,
};

struct SystemConfig {
  sim::DeploymentConfig deployment;  // N, N_b, N_a, field, range

  RangingType ranging_type = RangingType::kRssi;
  ranging::RssiConfig rssi;          // e_max = 4 ft default
  ranging::ToaConfig toa;            // ~3.9 ft at the default sync bound
  ranging::MoteTimingConfig timing;  // Figure 4 RTT model

  /// Which wormhole detector every node carries: the paper's p_d
  /// abstraction, or the concrete geographic-leash detector (whose
  /// effective rate emerges from geometry instead of being assumed).
  enum class WormholeDetectorType { kProbabilistic, kGeographicLeash };
  WormholeDetectorType wormhole_detector_type =
      WormholeDetectorType::kProbabilistic;

  /// p_d of the probabilistic wormhole detector every node carries.
  double wormhole_detection_rate = 0.9;

  /// m: detecting IDs provisioned per benign beacon.
  std::size_t detecting_ids = 8;

  revocation::RevocationConfig revocation;  // tau1 = 10, tau2 = 2

  /// Behaviour of every compromised beacon.
  attack::MaliciousStrategyConfig strategy;

  /// Install the paper's wormhole between (100,100) and (800,700).
  bool paper_wormhole = true;
  /// Additional uniformly random wormholes (the analysis's N_w knob).
  std::size_t extra_random_wormholes = 0;
  /// Explicit extra tunnels (e.g. slow store-and-forward ones), installed
  /// before connectivity is computed.
  std::vector<sim::WormholeLink> custom_wormholes;

  /// Colluding malicious beacons flood alerts against benign beacons
  /// (Figure 14's worst case).
  bool collusion = false;

  /// Alert-storm attack: on top of the collusion plan, each colluder
  /// floods this many extra forged alerts at Zipf-skewed benign targets
  /// during the probe phase. 0 (the default) schedules nothing. Only
  /// meaningful with `collusion` on — the flood reuses the colluder set.
  struct AlertStormConfig {
    std::size_t flood_alerts_per_colluder = 0;
    /// Zipf exponent of the target-popularity skew (1 = classic Zipf;
    /// larger concentrates the flood on fewer victims).
    double zipf_exponent = 1.0;
    /// Flood submissions spread uniformly over this window from the probe
    /// phase start.
    sim::SimTime duration_ns = 30 * sim::kSecond;
  };
  AlertStormConfig storm;

  /// Coverage-directed framing attack: colluders accuse the benign
  /// beacons whose loss degrades coverage most, paced under tau1 and
  /// (when outages are scheduled) aligned to recovery edges. Default:
  /// disabled, nothing scheduled, no randomness drawn. The defense is
  /// `revocation.lifecycle`; framing against the paper's permanent
  /// scheme is the undefended baseline the framing bench sweeps.
  attack::FramingConfig framing;

  /// Localization fallback ladder: when revocation/quarantine leaves a
  /// sensor short of references, degrade multilateration -> robust ->
  /// weighted centroid with an explicit confidence tier instead of
  /// failing. Default: disabled, the seed's multilateration-or-fail.
  localization::FallbackConfig fallback;

  /// Probability a sensor learns a given revocation (paper: ~1 thanks to
  /// retransmission).
  double revocation_reach_probability = 1.0;

  /// Samples for the Figure-4 RTT calibration that fixes x_max.
  std::size_t rtt_calibration_samples = 10'000;

  /// Per-delivery radio loss probability (failure injection; the paper
  /// assumes reliable delivery via retransmission, so default 0).
  double channel_loss_probability = 0.0;

  /// Composable channel fault injection: i.i.d. + bursty loss,
  /// duplication, corruption, delay jitter, crash windows. Default: all
  /// off, reproducing the paper's reliable-delivery assumption exactly.
  sim::FaultPlan faults;

  /// Base-station durability and availability: snapshot/WAL persistence,
  /// scheduled primary outages, standby takeover. Default: disabled, a
  /// zero-cost pass-through to the paper's single immortal base station.
  revocation::FailoverConfig failover;

  /// Overload-resilient alert ingestion in front of the base station:
  /// sharded bounded queues, per-reporter rate limiting, priority-aware
  /// shedding and the WAL circuit breaker. Default: disabled, an exact
  /// pass-through to the cluster (bit-for-bit the seed behaviour).
  revocation::IngestConfig ingest;

  /// Retransmission policy for the probe exchange and sensor queries
  /// (timeout / max retries / exponential backoff with jitter). Disabled
  /// by default: requests are sent once, exactly the seed behaviour.
  sim::ArqConfig arq;

  /// k: how many request/reply rounds each probe performs; the detector
  /// evaluates the *median* measured distance and RTT, so one delayed
  /// retransmission cannot trigger a false local-replay verdict. k = 1
  /// reproduces the single-shot paper protocol.
  std::size_t rtt_probe_repeats = 1;

  /// Per-attempt loss probability of the alert transport (detecting
  /// beacon -> base station, typically multi-hop). Retried under `arq`;
  /// alerts that exhaust every attempt are counted as delivery failures.
  double alert_loss_probability = 0.0;

  /// Structured-trace destination (non-owning; must outlive every trial run
  /// with this config). nullptr — the default — means tracing is off and
  /// costs one cached branch per emit site; results are bit-for-bit
  /// identical either way because tracing draws no randomness.
  obs::TraceSink* trace_sink = nullptr;

  /// Streaming telemetry: window cadence, ring depth, and the optional
  /// `timeseries/v1` JSONL sink (non-owning, like trace_sink). Disabled —
  /// the default — constructs no sampler, registers no extra instruments,
  /// and leaves the run bit-for-bit the seed (the scheduler time probe
  /// schedules no events and the sampler draws no randomness).
  obs::TimeseriesOptions telemetry;

  /// SLO health monitors evaluated as telemetry windows close (requires
  /// telemetry.enabled). The verdict and breach log fold into
  /// TrialSummary::metrics_json under "slo".
  std::vector<obs::SloRule> slo_rules;

  /// Memory & hot-path micro-observability (src/obs/memstats): per-scope
  /// allocation telemetry plus scheduler/channel micro-counters (queue
  /// depth, heap sift distances, scan fan-out, packet lifetime). Off — the
  /// default — registers no instruments, keeps the global operator-new hook
  /// on its one-cached-branch fast path, and leaves runs bit-for-bit the
  /// seed. On, per-scope counts are identical at any --jobs because only
  /// scope-tagged simulation allocations are attributed (see DESIGN.md §14).
  bool memstats = false;

  /// Simulation phases: beacons probe first, then sensors localize.
  sim::SimTime probe_phase_start = 0;
  sim::SimTime sensor_phase_start = 60 * sim::kSecond;
  /// Stagger between consecutive probe/query transmissions per node.
  sim::SimTime transmission_stagger = 5 * sim::kMillisecond;

  std::uint64_t seed = 1;
};

}  // namespace sld::core
