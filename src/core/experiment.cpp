#include "core/experiment.hpp"

#include <chrono>
#include <cmath>
#include <optional>

#include "obs/profiler.hpp"

namespace sld::core {

AggregateSummary run_experiment(const ExperimentConfig& config) {
  AggregateSummary agg;
  for (std::size_t i = 0; i < config.trials; ++i) {
    SLD_PROF_SCOPE("trial");
    SystemConfig trial_config = config.base;
    trial_config.seed = config.base.seed + i;
    const auto wall_start = std::chrono::steady_clock::now();
    std::optional<SecureLocalizationSystem> system;
    {
      SLD_PROF_SCOPE("trial.setup");
      system.emplace(trial_config);
    }
    TrialSummary summary;
    {
      SLD_PROF_SCOPE("trial.run");
      summary = system->run();
    }
    {
      SLD_PROF_SCOPE("trial.teardown");
      system.reset();
    }
    agg.trial_wall_ms.add(
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - wall_start)
            .count());
    agg.total_sched_events += summary.sched_events;
    agg.total_packets += summary.channel.transmissions;
    agg.total_slo_breaches += summary.slo.breaches;
    if (summary.slo.enabled && !summary.slo.healthy)
      ++agg.slo_unhealthy_trials;
    agg.detection_rate.add(summary.detection_rate);
    agg.false_positive_rate.add(summary.false_positive_rate);
    agg.affected_per_malicious.add(summary.avg_affected_per_malicious);
    agg.mean_localization_error_ft.add(summary.mean_localization_error_ft);
    agg.requesters_per_malicious.add(summary.avg_requesters_per_malicious);
    agg.sensors_localized.add(static_cast<double>(summary.sensors_localized));
    if (summary.mean_malicious_revocation_latency_ms > 0.0)
      agg.revocation_latency_ms.add(
          summary.mean_malicious_revocation_latency_ms);
    agg.radio_energy_uj.add(summary.radio_energy_uj);
    if (config.keep_trial_summaries) agg.trials.push_back(std::move(summary));
  }
  return agg;
}

analysis::ModelParams model_params_for(const SystemConfig& config,
                                       double measured_requesters) {
  analysis::ModelParams p;
  p.total_nodes = config.deployment.total_nodes;
  p.beacon_count = config.deployment.beacon_count;
  p.malicious_count = config.deployment.malicious_beacon_count;
  p.wormhole_count =
      (config.paper_wormhole ? 1 : 0) + config.extra_random_wormholes;
  p.wormhole_detection_rate = config.wormhole_detection_rate;
  p.detecting_ids = config.detecting_ids;
  p.requesters_per_beacon =
      static_cast<std::size_t>(std::llround(measured_requesters));
  p.report_quota = config.revocation.report_quota;
  p.alert_threshold = config.revocation.alert_threshold;
  return p;
}

}  // namespace sld::core
