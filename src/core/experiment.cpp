#include "core/experiment.hpp"

#include <chrono>
#include <cmath>
#include <functional>
#include <optional>
#include <utility>

#include "core/executor.hpp"
#include "obs/profiler.hpp"
#include "obs/trace.hpp"

namespace sld::core {

namespace {

/// Everything one trial produces, buffered so the merge loop can replay it
/// in seed order regardless of which worker finished when.
struct TrialOutcome {
  TrialSummary summary;
  double wall_ms = 0.0;
  /// Lines the trial emitted into its private trace buffer (empty when the
  /// experiment has no trace sink). When the experiment's telemetry sink
  /// aliases its trace sink, the telemetry lines interleave here exactly
  /// as the trial emitted them — the aliasing is preserved per trial.
  std::vector<std::string> trace_lines;
  /// Telemetry lines when the timeseries sink is distinct from the trace
  /// sink.
  std::vector<std::string> timeseries_lines;
};

/// Runs one complete trial — setup, run, teardown — with the same profiler
/// span structure on every path, so a profiled `--jobs N` run merges to
/// the same span tree (names and call counts) as a profiled serial run.
TrialOutcome run_one_trial(const SystemConfig& trial_config) {
  SLD_PROF_SCOPE("trial");
  TrialOutcome out;
  const auto wall_start = std::chrono::steady_clock::now();
  std::optional<SecureLocalizationSystem> system;
  {
    SLD_PROF_SCOPE("trial.setup");
    system.emplace(trial_config);
  }
  {
    SLD_PROF_SCOPE("trial.run");
    out.summary = system->run();
  }
  {
    SLD_PROF_SCOPE("trial.teardown");
    system.reset();
  }
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - wall_start)
                    .count();
  return out;
}

/// Folds one trial into the aggregate. Shared by the serial loop and the
/// parallel merge so both paths accumulate in the identical order with the
/// identical arithmetic.
void accumulate(AggregateSummary& agg, TrialOutcome&& out,
                bool keep_trial_summaries) {
  const TrialSummary& summary = out.summary;
  agg.trial_wall_ms.add(out.wall_ms);
  agg.total_sched_events += summary.sched_events;
  agg.total_packets += summary.channel.transmissions;
  agg.total_slo_breaches += summary.slo.breaches;
  if (summary.slo.enabled && !summary.slo.healthy)
    ++agg.slo_unhealthy_trials;
  agg.memhot.merge(summary.memhot);
  agg.detection_rate.add(summary.detection_rate);
  agg.false_positive_rate.add(summary.false_positive_rate);
  agg.affected_per_malicious.add(summary.avg_affected_per_malicious);
  agg.mean_localization_error_ft.add(summary.mean_localization_error_ft);
  agg.requesters_per_malicious.add(summary.avg_requesters_per_malicious);
  agg.sensors_localized.add(static_cast<double>(summary.sensors_localized));
  if (summary.mean_malicious_revocation_latency_ms > 0.0)
    agg.revocation_latency_ms.add(
        summary.mean_malicious_revocation_latency_ms);
  agg.radio_energy_uj.add(summary.radio_energy_uj);
  if (keep_trial_summaries) agg.trials.push_back(std::move(out.summary));
}

AggregateSummary run_serial(const ExperimentConfig& config) {
  AggregateSummary agg;
  for (std::size_t i = 0; i < config.trials; ++i) {
    SystemConfig trial_config = config.base;
    trial_config.seed = config.base.seed + i;
    accumulate(agg, run_one_trial(trial_config),
               config.keep_trial_summaries);
  }
  return agg;
}

AggregateSummary run_parallel(const ExperimentConfig& config,
                              std::size_t jobs) {
  // Ownership rules (DESIGN.md §13): each trial is a sealed unit — its own
  // Scheduler, Network, RNG streams, MetricsRegistry, and buffered
  // observability sinks live and die on one worker. The experiment-level
  // sinks and the aggregate are touched only by this (the calling) thread,
  // strictly after the pool drains.
  obs::TraceSink* const trace_sink = config.base.trace_sink;
  obs::TraceSink* const ts_sink = config.base.telemetry.sink;
  const bool ts_aliases_trace = ts_sink != nullptr && ts_sink == trace_sink;

  std::vector<TrialOutcome> outcomes(config.trials);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(config.trials);
  for (std::size_t i = 0; i < config.trials; ++i) {
    tasks.push_back([&config, &outcomes, trace_sink, ts_sink,
                     ts_aliases_trace, i] {
      SystemConfig trial_config = config.base;
      trial_config.seed = config.base.seed + i;
      // Private per-trial buffers in place of the shared sinks: the trial
      // writes as if it owned the stream; the merge below replays the
      // buffers in seed order, reproducing the serial interleaving.
      obs::MemorySink trace_buffer;
      obs::MemorySink timeseries_buffer;
      if (trace_sink != nullptr) trial_config.trace_sink = &trace_buffer;
      if (ts_sink != nullptr) {
        trial_config.telemetry.sink =
            ts_aliases_trace ? &trace_buffer : &timeseries_buffer;
      }
      TrialOutcome out = run_one_trial(trial_config);
      out.trace_lines = trace_buffer.take_lines();
      out.timeseries_lines = timeseries_buffer.take_lines();
      outcomes[i] = std::move(out);
    });
  }

  WorkStealingPool pool(jobs);
  pool.run(std::move(tasks));

  // Seed-ordered merge: statistics accumulate and streams flush in the
  // exact order the serial loop would have produced them.
  AggregateSummary agg;
  for (std::size_t i = 0; i < config.trials; ++i) {
    TrialOutcome& out = outcomes[i];
    if (trace_sink != nullptr)
      for (const auto& line : out.trace_lines) trace_sink->write(line);
    if (ts_sink != nullptr && !ts_aliases_trace)
      for (const auto& line : out.timeseries_lines) ts_sink->write(line);
    out.trace_lines.clear();
    out.timeseries_lines.clear();
    accumulate(agg, std::move(out), config.keep_trial_summaries);
  }
  return agg;
}

}  // namespace

AggregateSummary run_experiment(const ExperimentConfig& config) {
  std::size_t jobs = WorkStealingPool::resolve_jobs(config.jobs);
  if (jobs > config.trials) jobs = config.trials;
  if (jobs <= 1) return run_serial(config);
  return run_parallel(config, jobs);
}

analysis::ModelParams model_params_for(const SystemConfig& config,
                                       double measured_requesters) {
  analysis::ModelParams p;
  p.total_nodes = config.deployment.total_nodes;
  p.beacon_count = config.deployment.beacon_count;
  p.malicious_count = config.deployment.malicious_beacon_count;
  p.wormhole_count =
      (config.paper_wormhole ? 1 : 0) + config.extra_random_wormholes;
  p.wormhole_detection_rate = config.wormhole_detection_rate;
  p.detecting_ids = config.detecting_ids;
  p.requesters_per_beacon =
      static_cast<std::size_t>(std::llround(measured_requesters));
  p.report_quota = config.revocation.report_quota;
  p.alert_threshold = config.revocation.alert_threshold;
  return p;
}

}  // namespace sld::core
