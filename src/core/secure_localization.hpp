// The full system: deployment -> crypto provisioning -> probing phase
// (detecting nodes + base-station revocation) -> sensor localization phase
// -> metrics. One SecureLocalizationSystem instance runs one trial; the
// whole trial is a pure function of (SystemConfig, SystemConfig::seed).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/nodes.hpp"
#include "crypto/detecting_ids.hpp"
#include "obs/memstats.hpp"
#include "sim/deployment.hpp"
#include "sim/hotstats.hpp"
#include "sim/network.hpp"

namespace sld::core {

/// Digest of one trial.
struct TrialSummary {
  // Topology.
  std::size_t benign_beacons = 0;
  std::size_t malicious_beacons = 0;
  std::size_t sensors = 0;
  /// Average number of requester nodes connected to a malicious beacon —
  /// the measured N_c fed back into the analytical model.
  double avg_requesters_per_malicious = 0.0;

  // Revocation outcomes. With the evidence lifecycle enabled,
  // `detection_rate` counts quarantined-or-revoked malicious beacons
  // (quarantine is reversible sequestration — the beacon is out of
  // service either way), while `benign_revoked` / `false_positive_rate`
  // stay PERMANENT revocations only: a quarantined benign beacon that
  // exonerates was never falsely revoked.
  std::size_t malicious_revoked = 0;
  std::size_t benign_revoked = 0;
  /// Beacons held in (non-permanent) quarantine when the trial ended.
  /// Always 0 while revocation.lifecycle is disabled.
  std::size_t malicious_quarantined = 0;
  std::size_t benign_quarantined = 0;
  /// Minimum usable-beacon count over occupied deployment cells at the
  /// end of the trial (lifecycle runs only; 0 otherwise).
  std::uint32_t min_cell_usable = 0;
  double detection_rate = 0.0;       // (revoked + quarantined) / N_a
  double false_positive_rate = 0.0;  // benign_revoked / (N_b - N_a)

  // Attack impact.
  /// N': average number of non-beacon requesters that kept an effective
  /// malicious reference, per malicious beacon.
  double avg_affected_per_malicious = 0.0;
  std::size_t affected_sensor_references = 0;

  // Localization quality.
  std::size_t sensors_localized = 0;
  std::size_t sensors_unlocalized = 0;
  double mean_localization_error_ft = 0.0;
  double max_localization_error_ft = 0.0;
  /// Nearest-rank p99 of the per-sensor error sample (0 when no sensor
  /// localized).
  double p99_localization_error_ft = 0.0;

  // Fault tolerance.
  /// Mean time until a malicious beacon was revoked, in milliseconds of
  /// simulated time (0 when none was revoked).
  double mean_malicious_revocation_latency_ms = 0.0;
  /// Whole-network radio energy spent this trial, in microjoules — the
  /// denominator of retransmission-overhead comparisons.
  double radio_energy_uj = 0.0;

  // Throughput denominators (also present as gauges in metrics_json).
  /// Scheduler events executed this trial.
  std::uint64_t sched_events = 0;

  // Calibration + raw counters.
  double rtt_x_max_cycles = 0.0;
  Metrics raw;
  revocation::BaseStationStats base_station;
  /// Failover/durability accounting (all zero with the default config).
  revocation::ClusterStats cluster;
  revocation::DurableStoreStats durable;
  /// Ingestion-pipeline accounting (all zero with the default config).
  revocation::IngestStats ingest;
  sim::ChannelStats channel;

  /// SLO health verdict (inert defaults unless telemetry + SLO rules were
  /// configured; the full breach log rides in metrics_json under "slo").
  struct SloHealth {
    bool enabled = false;
    /// No rule was in breach when the trial ended (recovered breaches
    /// still show in `breaches`).
    bool healthy = true;
    std::uint64_t breaches = 0;
    std::uint64_t recovers = 0;
  };
  SloHealth slo;

  /// Memory & hot-path micro-observability roll-up (inert defaults unless
  /// SystemConfig::memstats was on): per-scope allocation deltas summed
  /// over the simulation scopes, scheduler heap statistics and channel
  /// scan fan-out. The integer counts are exact and identical at any
  /// --jobs; peak_live_bytes is an approximate upper bound (see
  /// obs/memstats.hpp).
  obs::MemHotTotals memhot;

  /// JSON snapshot of the trial's instrument registry (counters, gauges,
  /// histograms with p50/p90/p99, per-phase wall-clock timings). The
  /// wall-clock gauges make this the one TrialSummary field that is NOT a
  /// pure function of (config, seed).
  std::string metrics_json;
};

class SecureLocalizationSystem {
 public:
  explicit SecureLocalizationSystem(SystemConfig config);

  /// Runs the trial once. Must not be called twice on the same instance.
  TrialSummary run();

  // Post-run (or post-construction) introspection for examples/benches.
  const SystemConfig& config() const { return config_; }
  const sim::Deployment& deployment() const { return deployment_; }
  const SystemContext& context() const { return *ctx_; }
  sim::Network& network() { return network_; }

 private:
  /// Live-stat mirrors the telemetry presample hook syncs into the
  /// registry right before each window closes. Registered only for
  /// telemetry-enabled configs (nullptr otherwise).
  struct TelemetryMirror {
    obs::Counter* tx = nullptr;               // channel.tx
    obs::Counter* deliveries = nullptr;       // channel.deliveries
    obs::Counter* drops = nullptr;            // channel.drops
    obs::Counter* alerts = nullptr;           // alerts.submitted
    obs::Counter* revocations = nullptr;      // bs.revocations
    obs::Counter* sched_executed = nullptr;   // sched.executed
    obs::Gauge* sched_pending = nullptr;      // sched.pending
    obs::Gauge* breaker = nullptr;            // bs.ingest.breaker_state
    obs::Gauge* in_service = nullptr;         // bs.cluster.in_service
    /// Lifecycle mirrors, registered only when revocation.lifecycle is on
    /// (so telemetry-enabled seed runs keep their metric snapshots).
    obs::Counter* quarantines = nullptr;      // bs.quarantines
    obs::Counter* exonerations = nullptr;     // bs.exonerations
    obs::Counter* escalations = nullptr;      // bs.escalations
    obs::Gauge* min_usable = nullptr;         // coverage.min_usable
  };

  /// Per-scope allocation baseline + the registry mirror counters the
  /// presample hook and the end-of-run fold raise to the trial's deltas.
  /// Populated only for memstats-enabled configs.
  struct MemMirror {
    const char* tag = nullptr;
    obs::MemScopeStats start;
    obs::Counter* allocs = nullptr;
    obs::Counter* bytes = nullptr;
    obs::Counter* frees = nullptr;
  };

  void build_nodes();
  void schedule_collusion();
  /// Schedules the coverage-directed framing plan (attack/framing). No-op
  /// — and draws no randomness — unless config.framing.enabled.
  void schedule_framing();
  void schedule_failover();
  void schedule_finalize();
  void setup_telemetry();
  /// Registers mem.*/hot.* instruments, captures the per-scope allocation
  /// baseline and wires the scheduler/channel micro-counter sinks. No-op
  /// (and registers nothing) unless config.memstats is set.
  void setup_memstats();
  /// End-of-run fold: raises the mem.* mirrors to their final deltas and
  /// fills memhot_ from the baseline deltas + hot.* instruments.
  void fold_memstats();
  /// Presample hook: mirrors live stats (channel, scheduler, breaker,
  /// cluster service state) into the registry. Pure reads only — it must
  /// never perturb the simulation.
  void sync_telemetry(std::int64_t t);
  TrialSummary summarize() const;

  SystemConfig config_;
  std::unique_ptr<SystemContext> ctx_;
  sim::Network network_;
  sim::Deployment deployment_;
  std::vector<BeaconNode*> benign_nodes_;
  std::vector<MaliciousBeaconNode*> malicious_nodes_;
  std::vector<SensorNode*> sensor_nodes_;
  crypto::DetectingIdRegistry detecting_registry_;
  TelemetryMirror tel_;
  std::vector<MemMirror> mem_;
  sim::HotStats hot_;
  obs::Gauge* rss_gauge_ = nullptr;
  obs::MemHotTotals memhot_;
  bool ran_ = false;
};

}  // namespace sld::core
