#include "core/nodes.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "check/invariant.hpp"
#include "crypto/mac.hpp"
#include "localization/fallback.hpp"
#include "obs/memstats.hpp"
#include "obs/profiler.hpp"
#include "sim/channel.hpp"

namespace sld::core {

namespace {
/// Median of a small sample vector (mutates its argument; averages the two
/// middle elements for even sizes). A one-element vector returns its
/// element bit-for-bit, which keeps the default k = 1 probe exact.
double median_of(std::vector<double>& samples) {
  const std::size_t n = samples.size();
  const std::size_t mid = n / 2;
  std::nth_element(samples.begin(), samples.begin() + static_cast<std::ptrdiff_t>(mid),
                   samples.end());
  const double upper = samples[mid];
  if (n % 2 == 1) return upper;
  const double lower =
      *std::max_element(samples.begin(),
                        samples.begin() + static_cast<std::ptrdiff_t>(mid));
  return (lower + upper) / 2.0;
}

/// Builds the authenticated wire message for a payload.
sim::Message make_message(const crypto::PairwiseKeyManager& keys,
                          sim::NodeId src, sim::NodeId dst, sim::MsgType type,
                          util::Bytes payload) {
  sim::Message msg;
  msg.src = src;
  msg.dst = dst;
  msg.type = type;
  msg.payload = std::move(payload);
  msg.mac = crypto::compute_mac(keys.pairwise_key(src, dst), src, dst,
                                msg.payload);
  return msg;
}

bool verify(const crypto::PairwiseKeyManager& keys, const sim::Message& msg) {
  return crypto::verify_mac(keys.pairwise_key(msg.src, msg.dst), msg.src,
                            msg.dst, msg.payload, msg.mac);
}
}  // namespace

SystemContext::SystemContext(const SystemConfig& cfg)
    : config(cfg),
      keys(crypto::PairwiseKeyManager::from_seed(cfg.seed ^
                                                 0x6b6579736565643fULL)),
      rssi(cfg.rssi),
      toa(cfg.toa),
      timing(cfg.timing),
      cluster(cfg.revocation, cfg.failover),
      ingest(cfg.ingest, cluster),
      dissemination(cfg.revocation_reach_probability,
                    cfg.seed ^ 0xd15534731a7e0000ULL),
      rng(cfg.seed) {
  // Calibrate the RTT filter exactly the way the paper does: measure the
  // no-attack distribution and take x_max as the acceptance threshold.
  {
    obs::ScopedTimerMs timer(instruments, "phase.calibration_ms");
    util::Rng calib_rng = rng.fork(0xca11b);
    rtt_calibration = ranging::calibrate_rtt(
        timing, cfg.rtt_calibration_samples, cfg.deployment.comm_range_ft,
        calib_rng);
  }
  // Register the per-trial histograms up front so their order in the
  // snapshot is stable. RTT ranges are keyed off the calibrated x_max;
  // out-of-range samples clamp into the edge buckets (min/max stay exact).
  const double rtt_hi = 2.0 * rtt_calibration.x_max_cycles;
  rtt_probe_hist = &instruments.histogram("rtt.probe_cycles", 0.0, rtt_hi, 64);
  rtt_query_hist = &instruments.histogram("rtt.query_cycles", 0.0, rtt_hi, 64);
  residual_hist =
      &instruments.histogram("ranging.residual_ft", -20.0, 20.0, 80);
  alert_counter_hist = &instruments.histogram(
      "bs.alert_counter", 0.0,
      static_cast<double>(cfg.revocation.alert_threshold + 8), 16);
  node_energy_hist =
      &instruments.histogram("radio.node_energy_uj", 0.0, 100'000.0, 50);
  // Registered only for failover-enabled configs: the default metric
  // snapshot (and with it the bench goldens) must stay byte-identical.
  if (cfg.failover.any_enabled()) {
    recovery_hist =
        &instruments.histogram("recovery.latency_ms", 0.0, 10'000.0, 32);
    cluster.set_recovery_histogram(recovery_hist);
  }
  // Ingest instruments exist only for pipeline-enabled configs, for the
  // same goldens reason as recovery.latency_ms above.
  if (cfg.ingest.enabled()) {
    revocation::IngestPipeline::Instruments ins;
    ins.accepted = &instruments.counter("bs.ingest.accepted");
    ins.shed = &instruments.counter("bs.ingest.shed");
    ins.rate_limited = &instruments.counter("bs.ingest.rate_limited");
    ins.deferred = &instruments.counter("bs.ingest.deferred");
    ins.latency_ms = &instruments.histogram("bs.ingest.latency_ms", 0.1,
                                            60'000.0, 32,
                                            obs::HistogramScale::kLog);
    for (std::uint32_t i = 0; i < cfg.ingest.shard.count; ++i) {
      ins.queue_depth.push_back(
          &instruments.gauge("bs.ingest.queue_depth.s" + std::to_string(i)));
    }
    ins.breaker_state = &instruments.gauge("bs.ingest.breaker_state");
    ingest.set_instruments(std::move(ins));
    ingest.set_commit_hook([this](sim::NodeId /*reporter*/, sim::NodeId target,
                                  revocation::AlertDisposition disposition,
                                  sim::SimTime /*enqueued_at*/,
                                  sim::SimTime committed_at) {
      if (disposition == revocation::AlertDisposition::kAccepted ||
          disposition == revocation::AlertDisposition::kAcceptedAndRevoked) {
        alert_counter_hist->observe(
            static_cast<double>(cluster.alert_counter(target)));
      }
      if (disposition == revocation::AlertDisposition::kAcceptedAndRevoked)
        metrics.revocation_times.emplace_back(target, committed_at);
    });
  }
  switch (cfg.wormhole_detector_type) {
    case SystemConfig::WormholeDetectorType::kProbabilistic:
      wormhole_detector =
          std::make_unique<ranging::ProbabilisticWormholeDetector>(
              cfg.wormhole_detection_rate, cfg.seed ^ 0x3a1e5bd7a11ULL);
      break;
    case SystemConfig::WormholeDetectorType::kGeographicLeash:
      wormhole_detector =
          std::make_unique<ranging::GeographicLeashDetector>(
              max_ranging_error_ft());
      break;
  }
  detection::DetectorConfig det_cfg;
  det_cfg.max_ranging_error_ft = max_ranging_error_ft();
  det_cfg.replay.rtt_x_max_cycles = rtt_calibration.x_max_cycles;
  // Clock drift stretches an honest RTT by at most rate_rx - rate_tx over
  // the turnaround, i.e. 2*max_drift_ppm in the worst case; widen the
  // replay filter's acceptance band by that much so drift alone can never
  // read as replay delay. Zero with drift disabled — the calibrated x_max
  // is used untouched.
  if (cfg.faults.clock_drift.enabled()) {
    det_cfg.replay.rtt_x_max_cycles +=
        2.0 * cfg.faults.clock_drift.max_drift_ppm * 1e-6 *
        cfg.faults.clock_drift.turnaround_cycles;
  }
  detector.emplace(det_cfg, wormhole_detector.get());
}

double SystemContext::max_ranging_error_ft() const {
  switch (config.ranging_type) {
    case RangingType::kRssi:
      return config.rssi.max_error_ft;
    case RangingType::kToa:
      return toa.max_error_ft();
  }
  return config.rssi.max_error_ft;  // unreachable
}

void SystemContext::submit_alert(sim::NodeId reporter, sim::NodeId target,
                                 bool collusion_alert) {
  if (scheduler == nullptr)
    throw std::logic_error("SystemContext: scheduler not wired");
  if (collusion_alert)
    ++metrics.collusion_alerts_submitted;
  else
    ++metrics.alerts_submitted;
  metrics.alert_log.push_back({reporter, target, collusion_alert});
  if (tracer.on()) {
    tracer.emit(tracer.event("alert.submit")
                    .f("reporter", reporter)
                    .f("target", target)
                    .f("collusion", collusion_alert));
  }
  // A fresh nonce per *submission* (not per attempt): every transport copy
  // of this alert carries the same nonce, so the base station's dedup makes
  // retransmission idempotent.
  const std::uint64_t nonce = ++next_alert_nonce;
  const sim::SimTime jitter = static_cast<sim::SimTime>(
      rng.uniform(0.0, 50.0 * static_cast<double>(sim::kMillisecond)));
  scheduler->schedule_after(jitter, [this, reporter, target, nonce]() {
    deliver_alert_attempt(reporter, target, nonce, 0);
  });
}

void SystemContext::deliver_alert_attempt(sim::NodeId reporter,
                                          sim::NodeId target,
                                          std::uint64_t nonce,
                                          std::size_t attempt) {
  SLD_INVARIANT(attempt <= config.arq.max_retries,
                "retries bounded: alert delivery attempt " << attempt
                    << " exceeds max_retries=" << config.arq.max_retries);
  // The alert (and its ARQ retry state) lives in the reporter's volatile
  // memory: if the reporter is inside a crash window when this attempt
  // fires, the alert dies with it.
  if (faults != nullptr && faults->enabled() &&
      faults->node_crashed(reporter, scheduler->now())) {
    ++metrics.alerts_dropped_reporter_crash;
    if (tracer.on()) {
      tracer.emit(tracer.event("alert.reporter_down")
                      .f("reporter", reporter)
                      .f("target", target)
                      .f("attempt", static_cast<std::uint64_t>(attempt)));
    }
    return;
  }
  // An unavailable base station (primary down, standby not yet promoted)
  // looks exactly like a transport loss to the reporter: no ack arrives
  // and the ARQ policy retries. available() is vacuously true — and draws
  // nothing, schedules nothing — for the default failover config.
  const bool station_up = cluster.available(scheduler->now());
  if (!station_up) ++metrics.alerts_station_unavailable;
  // bernoulli(0) draws nothing, so the default lossless transport leaves
  // the per-trial RNG stream untouched.
  if (station_up && !rng.bernoulli(config.alert_loss_probability)) {
    if (!ingest.enabled()) {
      if (tracer.on()) {
        tracer.emit(tracer.event("alert.delivered")
                        .f("reporter", reporter)
                        .f("target", target)
                        .f("attempt", static_cast<std::uint64_t>(attempt)));
      }
      const auto disposition =
          cluster.process_alert(scheduler->now(), reporter, target, nonce);
      if (disposition == revocation::AlertDisposition::kAccepted ||
          disposition == revocation::AlertDisposition::kAcceptedAndRevoked) {
        alert_counter_hist->observe(
            static_cast<double>(cluster.alert_counter(target)));
      }
      if (disposition == revocation::AlertDisposition::kAcceptedAndRevoked)
        metrics.revocation_times.emplace_back(target, scheduler->now());
      return;
    }
    // Pipeline path: an enqueued (or pair-absorbed) alert is acked — its
    // counting happens at shard-commit time through the commit hook. A
    // shed or rate-limited alert got no ack, which to the reporter is
    // indistinguishable from a transport loss: fall through to the ARQ
    // retry path below and try again once the storm eases.
    const revocation::IngestResult res =
        ingest.submit(scheduler->now(), reporter, target, nonce);
    if (res.kind == revocation::IngestResult::Kind::kEnqueued ||
        res.kind == revocation::IngestResult::Kind::kAbsorbed) {
      if (tracer.on()) {
        tracer.emit(tracer.event("alert.delivered")
                        .f("reporter", reporter)
                        .f("target", target)
                        .f("attempt", static_cast<std::uint64_t>(attempt)));
      }
      return;
    }
  }
  // Attempt lost in transit (or no station was up to receive it).
  if (tracer.on()) {
    tracer.emit(tracer.event("alert.lost")
                    .f("reporter", reporter)
                    .f("target", target)
                    .f("attempt", static_cast<std::uint64_t>(attempt)));
  }
  if (config.arq.enabled && attempt < config.arq.max_retries) {
    ++metrics.alert_retransmissions;
    const sim::SimTime delay = sim::arq_timeout(config.arq, attempt, rng);
    if (tracer.on()) {
      tracer.emit(tracer.event("alert.retry")
                      .f("reporter", reporter)
                      .f("target", target)
                      .f("attempt", static_cast<std::uint64_t>(attempt + 1))
                      .f("delay_ns", static_cast<std::int64_t>(delay)));
    }
    scheduler->schedule_after(delay,
                              [this, reporter, target, nonce, attempt]() {
      deliver_alert_attempt(reporter, target, nonce, attempt + 1);
    });
  } else {
    ++metrics.alerts_delivery_failed;
    if (tracer.on()) {
      tracer.emit(tracer.event("alert.giveup")
                      .f("reporter", reporter)
                      .f("target", target)
                      .f("attempt", static_cast<std::uint64_t>(attempt)));
    }
  }
}

SystemContext::SignalMeasurement SystemContext::measure(
    const sim::Delivery& delivery, const sim::BeaconReplyPayload& payload,
    const util::Vec2& receiver_position, util::Rng& node_rng,
    double rtt_skew_cycles) const {
  SignalMeasurement m;
  // Ranging measures distance to wherever the energy radiated from.
  const double physical_distance =
      util::distance(delivery.ctx.radiating_position, receiver_position);
  m.physical_distance_ft = physical_distance;
  switch (config.ranging_type) {
    case RangingType::kRssi:
      m.distance_ft = rssi.measure_manipulated(
          physical_distance, payload.range_manipulation_ft, node_rng);
      break;
    case RangingType::kToa:
      // The attacker's manipulation is expressed in feet; convert to the
      // equivalent timestamp shift (1 ft ~ 1.0167 ns).
      m.distance_ft = toa.measure_manipulated(
          physical_distance,
          payload.range_manipulation_ft /
              (sim::kSpeedOfLightFtPerSec * 1e-9),
          node_rng);
      break;
  }
  // RTT = honest hardware sample + replay delay + the target's timing lie
  // + the receiver/sender clock-rate mismatch over the turnaround (0
  // unless clock drift is injected).
  m.rtt_cycles = timing.sample_rtt_cycles(physical_distance, node_rng) +
                 delivery.ctx.extra_delay_cycles +
                 payload.processing_bias_cycles + rtt_skew_cycles;
  return m;
}

// --- BeaconNode ----------------------------------------------------------

BeaconNode::BeaconNode(sim::NodeId id, util::Vec2 position, double range_ft,
                       SystemContext& ctx,
                       std::vector<sim::NodeId> detecting_ids)
    : sim::Node(id, position, range_ft),
      ctx_(ctx),
      detecting_ids_(std::move(detecting_ids)),
      rng_(ctx.rng.fork(0xbea0000ULL + id)) {}

void BeaconNode::set_probe_targets(std::vector<sim::NodeId> targets) {
  probe_targets_ = std::move(targets);
}

void BeaconNode::start() { schedule_probes(); }

void BeaconNode::schedule_probes() {
  // Probe every target beacon once per detecting ID, staggered so the
  // event queue interleaves nodes deterministically but not degenerately.
  // At start() this begins at probe_phase_start exactly as the seed did;
  // after a reboot it begins at the current time instead.
  sim::SimTime at =
      std::max(scheduler().now(), ctx_.config.probe_phase_start);
  for (const auto target : probe_targets_) {
    for (const auto detecting_id : detecting_ids_) {
      at += ctx_.config.transmission_stagger;
      schedule_timer_at(at, [this, target, detecting_id]() {
        send_probe(target, detecting_id);
      });
    }
  }
}

void BeaconNode::on_crash(sim::SimTime) {
  // Volatile state dies with the node: in-flight probe rounds (their ARQ
  // timers are epoch-fenced) and the memory of which targets were already
  // reported.
  pending_.clear();
  reported_.clear();
}

void BeaconNode::on_reboot(sim::SimTime now, sim::SimTime) {
  // Rebooting inside the probe phase restarts the probe schedule from
  // scratch; after the phase the node just resumes answering requests.
  if (now < ctx_.config.sensor_phase_start) schedule_probes();
}

void BeaconNode::send_probe(sim::NodeId target, sim::NodeId detecting_id) {
  PendingProbe probe;
  probe.target = target;
  probe.detecting_id = detecting_id;
  send_probe_round(std::move(probe), /*is_retransmission=*/false);
}

void BeaconNode::send_probe_round(PendingProbe probe,
                                  bool is_retransmission) {
  SLD_INVARIANT(probe.attempt <= ctx_.config.arq.max_retries,
                "retries bounded: probe attempt " << probe.attempt
                    << " exceeds max_retries=" << ctx_.config.arq.max_retries);
  sim::BeaconRequestPayload req;
  req.nonce = rng_();
  const std::uint64_t nonce = req.nonce;
  const auto target = probe.target;
  const auto detecting_id = probe.detecting_id;
  const auto attempt = probe.attempt;
  pending_.emplace(nonce, std::move(probe));
  if (is_retransmission)
    ++ctx_.metrics.probe_retransmissions;
  else
    ++ctx_.metrics.probes_sent;
  if (ctx_.tracer.on()) {
    ctx_.tracer.emit(ctx_.tracer.event("probe.send")
                         .f("node", id())
                         .f("det_id", detecting_id)
                         .f("target", target)
                         .f("nonce", nonce)
                         .f("attempt", static_cast<std::uint64_t>(attempt))
                         .f("retx", is_retransmission));
  }
  channel().unicast(*this, make_message(ctx_.keys, detecting_id, target,
                                        sim::MsgType::kBeaconRequest,
                                        req.serialize()));
  if (ctx_.config.arq.enabled) {
    const sim::SimTime timeout =
        sim::arq_timeout(ctx_.config.arq, attempt, rng_);
    // Boot-epoch-fenced: a timeout scheduled before a crash must not fire
    // into the rebooted node's fresh state.
    schedule_timer(timeout, [this, nonce]() { on_probe_timeout(nonce); });
  }
}

void BeaconNode::on_probe_timeout(std::uint64_t nonce) {
  SLD_PROF_SCOPE("arq.probe_timeout");
  SLD_MEM_SCOPE("arq");
  const auto it = pending_.find(nonce);
  if (it == pending_.end()) return;  // a reply arrived in time
  PendingProbe probe = std::move(it->second);
  pending_.erase(it);
  if (ctx_.tracer.on()) {
    ctx_.tracer.emit(
        ctx_.tracer.event("arq.timeout")
            .f("node", id())
            .f("target", probe.target)
            .f("kind", "probe")
            .f("attempt", static_cast<std::uint64_t>(probe.attempt)));
  }
  if (probe.attempt < ctx_.config.arq.max_retries) {
    // Retransmit under a fresh nonce: a straggling reply to the old nonce
    // is ignored and the new round's RTT clock starts clean, so the
    // timeout itself can never read as replay delay.
    ++probe.attempt;
    if (ctx_.tracer.on()) {
      ctx_.tracer.emit(
          ctx_.tracer.event("arq.retry")
              .f("node", id())
              .f("target", probe.target)
              .f("kind", "probe")
              .f("attempt", static_cast<std::uint64_t>(probe.attempt)));
    }
    send_probe_round(std::move(probe), /*is_retransmission=*/true);
    return;
  }
  // Every attempt exhausted: the explicit ProbeOutcome::kNoResponse path
  // (instead of the seed's silently missing probe).
  ++ctx_.metrics.probe_no_response;
  if (ctx_.tracer.on()) {
    ctx_.tracer.emit(
        ctx_.tracer.event("arq.giveup")
            .f("node", id())
            .f("target", probe.target)
            .f("kind", "probe")
            .f("attempt", static_cast<std::uint64_t>(probe.attempt)));
  }
}

void BeaconNode::on_message(const sim::Delivery& delivery) {
  switch (delivery.msg.type) {
    case sim::MsgType::kBeaconRequest:
      handle_request(delivery);
      return;
    case sim::MsgType::kBeaconReply:
      handle_probe_reply(delivery);
      return;
    default:
      return;  // beacons ignore other traffic
  }
}

void BeaconNode::handle_request(const sim::Delivery& delivery) {
  if (!verify(ctx_.keys, delivery.msg)) {
    ++ctx_.metrics.mac_failures;
    return;
  }
  const auto req = sim::BeaconRequestPayload::parse(delivery.msg.payload);
  sim::BeaconReplyPayload reply;
  reply.nonce = req.nonce;
  reply.claimed_position = position();  // truthful
  channel().unicast(*this, make_message(ctx_.keys, id(), delivery.msg.src,
                                        sim::MsgType::kBeaconReply,
                                        reply.serialize()));
}

void BeaconNode::handle_probe_reply(const sim::Delivery& delivery) {
  SLD_PROF_SCOPE("detect.probe_round");
  SLD_MEM_SCOPE("detection");
  if (!verify(ctx_.keys, delivery.msg)) {
    ++ctx_.metrics.mac_failures;
    return;
  }
  const auto reply = sim::BeaconReplyPayload::parse(delivery.msg.payload);
  const auto it = pending_.find(reply.nonce);
  if (it == pending_.end()) return;  // duplicate or stale: first copy wins
  PendingProbe probe = std::move(it->second);
  pending_.erase(it);
  if (delivery.msg.src != probe.target) return;  // mismatched responder
  ++ctx_.metrics.probe_replies;

  const auto m = ctx_.measure(
      delivery, reply, position(), rng_,
      channel().faults().rtt_skew_cycles(id(), delivery.msg.src));
  ctx_.rtt_probe_hist->observe(m.rtt_cycles);
  ctx_.residual_hist->observe(m.distance_ft - m.physical_distance_ft);
  if (ctx_.tracer.on()) {
    ctx_.tracer.emit(ctx_.tracer.event("probe.reply")
                         .f("node", id())
                         .f("target", probe.target)
                         .f("nonce", reply.nonce)
                         .f("dist_ft", m.distance_ft)
                         .f("rtt_cycles", m.rtt_cycles));
  }
  probe.rtt_samples.push_back(m.rtt_cycles);
  probe.dist_samples.push_back(m.distance_ft);

  // Median-of-k probing: keep exchanging until k rounds answered, then
  // judge the median measurement (k = 1: this round's values verbatim).
  const std::size_t k = std::max<std::size_t>(1, ctx_.config.rtt_probe_repeats);
  if (probe.rtt_samples.size() < k) {
    probe.attempt = 0;  // fresh ARQ budget for the next round
    send_probe_round(std::move(probe), /*is_retransmission=*/false);
    return;
  }

  detection::SignalObservation obs;
  obs.receiver_id = id();
  obs.sender_id = probe.target;
  obs.receiver_position = position();
  obs.receiver_knows_position = true;
  obs.claimed_position = reply.claimed_position;
  obs.measured_distance_ft = median_of(probe.dist_samples);
  obs.target_range_ft = ctx_.config.deployment.comm_range_ft;
  obs.observed_rtt_cycles = median_of(probe.rtt_samples);
  obs.via_wormhole = delivery.ctx.via_wormhole;
  obs.sender_faked_wormhole_indication = reply.fake_wormhole_indication;

  switch (ctx_.detector->evaluate(obs, rng_)) {
    case detection::ProbeOutcome::kConsistent:
      return;
    case detection::ProbeOutcome::kIgnoredWormholeReplay:
      ++ctx_.metrics.consistency_flags;
      ++ctx_.metrics.probe_ignored_wormhole;
      return;
    case detection::ProbeOutcome::kIgnoredLocalReplay:
      ++ctx_.metrics.consistency_flags;
      ++ctx_.metrics.probe_ignored_local_replay;
      return;
    case detection::ProbeOutcome::kAlert:
      ++ctx_.metrics.consistency_flags;
      // One alert per (reporter, target) pair.
      if (reported_.insert(probe.target).second)
        ctx_.submit_alert(id(), probe.target, /*collusion_alert=*/false);
      return;
    case detection::ProbeOutcome::kNoResponse:
      return;  // evaluate() never returns this; timeouts are handled in
               // on_probe_timeout
  }
}

// --- MaliciousBeaconNode --------------------------------------------------

MaliciousBeaconNode::MaliciousBeaconNode(sim::NodeId id, util::Vec2 position,
                                         double range_ft, SystemContext& ctx,
                                         attack::MaliciousBeaconStrategy strategy)
    : sim::Node(id, position, range_ft),
      ctx_(ctx),
      strategy_(std::move(strategy)),
      rng_(ctx.rng.fork(0xbad0000ULL + id)) {}

void MaliciousBeaconNode::on_message(const sim::Delivery& delivery) {
  if (delivery.msg.type != sim::MsgType::kBeaconRequest) return;
  if (!verify(ctx_.keys, delivery.msg)) {
    ++ctx_.metrics.mac_failures;
    return;
  }
  const auto req = sim::BeaconRequestPayload::parse(delivery.msg.payload);
  // The requester ID is all the attacker sees — it cannot tell a detecting
  // ID from a real sensor ID, which is the crux of the scheme.
  const auto reply =
      strategy_.craft_reply(delivery.msg.src, req.nonce, position());
  channel().unicast(*this, make_message(ctx_.keys, id(), delivery.msg.src,
                                        sim::MsgType::kBeaconReply,
                                        reply.serialize()));
}

// --- SensorNode -----------------------------------------------------------

SensorNode::SensorNode(sim::NodeId id, util::Vec2 position, double range_ft,
                       SystemContext& ctx)
    : sim::Node(id, position, range_ft),
      ctx_(ctx),
      rng_(ctx.rng.fork(0x5e50000ULL + id)) {}

void SensorNode::set_query_targets(std::vector<sim::NodeId> targets) {
  query_targets_ = std::move(targets);
}

void SensorNode::start() { schedule_queries(); }

void SensorNode::schedule_queries() {
  sim::SimTime at =
      std::max(scheduler().now(), ctx_.config.sensor_phase_start);
  for (const auto target : query_targets_) {
    at += ctx_.config.transmission_stagger;
    schedule_timer_at(at, [this, target]() {
      send_query(PendingQuery{target, 0}, /*is_retransmission=*/false);
    });
  }
}

void SensorNode::on_crash(sim::SimTime) {
  // In-flight queries and accepted references are RAM-resident: a crash
  // forgets both, and localization has to start over.
  pending_.clear();
  accepted_.clear();
}

void SensorNode::on_reboot(sim::SimTime, sim::SimTime) {
  // Whether the reboot lands before or inside the sensor phase, the node
  // re-queries everything: the pre-crash query timers are epoch-fenced and
  // its accepted set was lost either way. (Before the phase this simply
  // re-registers the original schedule.)
  schedule_queries();
}

void SensorNode::send_query(PendingQuery query, bool is_retransmission) {
  SLD_INVARIANT(query.attempt <= ctx_.config.arq.max_retries,
                "retries bounded: query attempt " << query.attempt
                    << " exceeds max_retries=" << ctx_.config.arq.max_retries);
  sim::BeaconRequestPayload req;
  req.nonce = rng_();
  const std::uint64_t nonce = req.nonce;
  const auto target = query.target;
  const auto attempt = query.attempt;
  pending_.emplace(nonce, query);
  if (is_retransmission)
    ++ctx_.metrics.sensor_retransmissions;
  else
    ++ctx_.metrics.sensor_requests;
  if (ctx_.tracer.on()) {
    ctx_.tracer.emit(ctx_.tracer.event("query.send")
                         .f("node", id())
                         .f("target", target)
                         .f("nonce", nonce)
                         .f("attempt", static_cast<std::uint64_t>(attempt))
                         .f("retx", is_retransmission));
  }
  channel().unicast(*this, make_message(ctx_.keys, id(), target,
                                        sim::MsgType::kBeaconRequest,
                                        req.serialize()));
  if (ctx_.config.arq.enabled) {
    const sim::SimTime timeout =
        sim::arq_timeout(ctx_.config.arq, attempt, rng_);
    schedule_timer(timeout, [this, nonce]() { on_query_timeout(nonce); });
  }
}

void SensorNode::on_query_timeout(std::uint64_t nonce) {
  SLD_PROF_SCOPE("arq.query_timeout");
  SLD_MEM_SCOPE("arq");
  const auto it = pending_.find(nonce);
  if (it == pending_.end()) return;  // answered in time
  PendingQuery query = it->second;
  pending_.erase(it);
  if (ctx_.tracer.on()) {
    ctx_.tracer.emit(
        ctx_.tracer.event("arq.timeout")
            .f("node", id())
            .f("target", query.target)
            .f("kind", "query")
            .f("attempt", static_cast<std::uint64_t>(query.attempt)));
  }
  if (query.attempt < ctx_.config.arq.max_retries) {
    ++query.attempt;
    if (ctx_.tracer.on()) {
      ctx_.tracer.emit(
          ctx_.tracer.event("arq.retry")
              .f("node", id())
              .f("target", query.target)
              .f("kind", "query")
              .f("attempt", static_cast<std::uint64_t>(query.attempt)));
    }
    send_query(query, /*is_retransmission=*/true);
    return;
  }
  // The beacon never answered: one fewer location reference, accounted
  // explicitly instead of vanishing.
  ++ctx_.metrics.sensor_no_response;
  if (ctx_.tracer.on()) {
    ctx_.tracer.emit(
        ctx_.tracer.event("arq.giveup")
            .f("node", id())
            .f("target", query.target)
            .f("kind", "query")
            .f("attempt", static_cast<std::uint64_t>(query.attempt)));
  }
}

void SensorNode::on_message(const sim::Delivery& delivery) {
  if (delivery.msg.type != sim::MsgType::kBeaconReply) return;
  if (!verify(ctx_.keys, delivery.msg)) {
    ++ctx_.metrics.mac_failures;
    return;
  }
  const auto reply = sim::BeaconReplyPayload::parse(delivery.msg.payload);
  const auto it = pending_.find(reply.nonce);
  if (it == pending_.end()) return;  // duplicate or stale: first copy wins
  const sim::NodeId target = it->second.target;
  pending_.erase(it);
  if (delivery.msg.src != target) return;
  ++ctx_.metrics.sensor_replies;

  const auto m = ctx_.measure(
      delivery, reply, position(), rng_,
      channel().faults().rtt_skew_cycles(id(), delivery.msg.src));
  ctx_.rtt_query_hist->observe(m.rtt_cycles);
  ctx_.residual_hist->observe(m.distance_ft - m.physical_distance_ft);
  if (ctx_.tracer.on()) {
    ctx_.tracer.emit(ctx_.tracer.event("query.reply")
                         .f("node", id())
                         .f("target", target)
                         .f("nonce", reply.nonce)
                         .f("dist_ft", m.distance_ft)
                         .f("rtt_cycles", m.rtt_cycles));
  }

  detection::SignalObservation obs;
  obs.receiver_id = id();
  obs.sender_id = target;
  obs.receiver_knows_position = false;  // sensors don't know where they are
  obs.claimed_position = reply.claimed_position;
  obs.measured_distance_ft = m.distance_ft;
  obs.target_range_ft = ctx_.config.deployment.comm_range_ft;
  obs.observed_rtt_cycles = m.rtt_cycles;
  obs.via_wormhole = delivery.ctx.via_wormhole;
  obs.sender_faked_wormhole_indication = reply.fake_wormhole_indication;

  const auto verdict =
      ctx_.detector->replay_filter().evaluate_at_nonbeacon(obs, rng_);
  if (ctx_.tracer.on()) {
    const char* verdict_name = "genuine";
    if (verdict == detection::SignalVerdict::kWormholeReplay)
      verdict_name = "wormhole_replay";
    else if (verdict == detection::SignalVerdict::kLocalReplay)
      verdict_name = "local_replay";
    ctx_.tracer.emit(ctx_.tracer.event("query.verdict")
                         .f("node", id())
                         .f("target", target)
                         .f("verdict", verdict_name));
  }
  switch (verdict) {
    case detection::SignalVerdict::kWormholeReplay:
      ++ctx_.metrics.sensor_discarded_wormhole;
      return;
    case detection::SignalVerdict::kLocalReplay:
      ++ctx_.metrics.sensor_discarded_rtt;
      return;
    case detection::SignalVerdict::kGenuine:
      break;
  }

  AcceptedReference acc;
  acc.ref.beacon_id = target;
  acc.ref.beacon_position = reply.claimed_position;
  acc.ref.measured_distance_ft = m.distance_ft;
  const auto truth_it = ctx_.truth.find(target);
  if (truth_it != ctx_.truth.end() && truth_it->second.malicious) {
    const bool lied_location =
        util::distance(truth_it->second.true_position,
                       reply.claimed_position) > 1e-6;
    const bool manipulated_signal = reply.range_manipulation_ft != 0.0;
    acc.effective_malicious = lied_location || manipulated_signal;
  }
  if (ctx_.tracer.on()) {
    ctx_.tracer.emit(ctx_.tracer.event("query.accept")
                         .f("node", id())
                         .f("target", target)
                         .f("effective_malicious", acc.effective_malicious));
  }
  accepted_.push_back(std::move(acc));
}

void SensorNode::finalize() {
  SLD_PROF_SCOPE("sensor.finalize");
  // A sensor that is down when the phase ends has nothing to localize
  // with — its accepted references died in the crash.
  if (is_down()) {
    ++ctx_.metrics.sensors_unlocalized;
    if (ctx_.tracer.on()) {
      ctx_.tracer.emit(ctx_.tracer.event("sensor.unlocalized")
                           .f("node", id())
                           .f("refs", static_cast<std::uint64_t>(0)));
    }
    return;
  }
  const sim::SimTime now = scheduler().now();
  localization::LocationReferences refs;
  refs.reserve(accepted_.size());
  std::unordered_set<sim::NodeId> counted;
  for (const auto& acc : accepted_) {
    const bool revoked = ctx_.bs().is_revoked(acc.ref.beacon_id) &&
                         ctx_.dissemination.sensor_knows(id(),
                                                         acc.ref.beacon_id);
    if (revoked) {
      ++ctx_.metrics.sensor_refs_dropped_revoked;
      if (ctx_.tracer.on()) {
        ctx_.tracer.emit(ctx_.tracer.event("sensor.drop_revoked")
                             .f("node", id())
                             .f("target", acc.ref.beacon_id));
      }
      continue;
    }
    // Quarantine is disseminated like a (reversible) revocation notice:
    // sensors that heard it sequester the reference. is_quarantined
    // short-circuits to false while the lifecycle is disabled.
    const bool quarantined =
        ctx_.bs().is_quarantined(acc.ref.beacon_id, now) &&
        ctx_.dissemination.sensor_knows(id(), acc.ref.beacon_id);
    if (quarantined) {
      ++ctx_.metrics.sensor_refs_dropped_quarantined;
      if (ctx_.tracer.on()) {
        ctx_.tracer.emit(ctx_.tracer.event("sensor.drop_quarantined")
                             .f("node", id())
                             .f("target", acc.ref.beacon_id));
      }
      continue;
    }
    if (acc.effective_malicious && counted.insert(acc.ref.beacon_id).second)
      ++ctx_.metrics.affected_by_malicious[acc.ref.beacon_id];
    refs.push_back(acc.ref);
  }

  if (ctx_.config.fallback.enabled) {
    const auto fallen =
        localization::localize_with_fallback(refs, ctx_.config.fallback);
    if (fallen) {
      localization::LocalizationResult as_result;
      as_result.position = fallen->position;
      as_result.rms_residual_ft = fallen->rms_residual_ft;
      result_ = as_result;
      ++ctx_.metrics.sensors_localized;
      switch (fallen->tier) {
        case localization::ConfidenceTier::kMultilateration:
          ++ctx_.metrics.sensors_tier_mlat;
          break;
        case localization::ConfidenceTier::kRobust:
          ++ctx_.metrics.sensors_tier_robust;
          break;
        case localization::ConfidenceTier::kCentroid:
          ++ctx_.metrics.sensors_tier_centroid;
          break;
      }
      const double err_ft = util::distance(fallen->position, position());
      ctx_.metrics.localization_error_ft.add(err_ft);
      ctx_.metrics.localization_errors_ft.push_back(err_ft);
      if (ctx_.tracer.on()) {
        ctx_.tracer.emit(
            ctx_.tracer.event("sensor.localized")
                .f("node", id())
                .f("err_ft", err_ft)
                .f("refs", static_cast<std::uint64_t>(refs.size()))
                .f("tier",
                   localization::confidence_tier_name(fallen->tier)));
      }
    } else {
      ++ctx_.metrics.sensors_unlocalized;
      if (ctx_.tracer.on()) {
        ctx_.tracer.emit(ctx_.tracer.event("sensor.unlocalized")
                             .f("node", id())
                             .f("refs",
                                static_cast<std::uint64_t>(refs.size())));
      }
    }
    return;
  }

  localization::MultilaterationSolver solver;
  auto fit = solver.solve(refs);
  if (fit) {
    result_ = *fit;
    ++ctx_.metrics.sensors_localized;
    const double err_ft = util::distance(fit->position, position());
    ctx_.metrics.localization_error_ft.add(err_ft);
    ctx_.metrics.localization_errors_ft.push_back(err_ft);
    if (ctx_.tracer.on()) {
      ctx_.tracer.emit(ctx_.tracer.event("sensor.localized")
                           .f("node", id())
                           .f("err_ft", err_ft)
                           .f("refs",
                              static_cast<std::uint64_t>(refs.size())));
    }
  } else {
    ++ctx_.metrics.sensors_unlocalized;
    if (ctx_.tracer.on()) {
      ctx_.tracer.emit(ctx_.tracer.event("sensor.unlocalized")
                           .f("node", id())
                           .f("refs",
                              static_cast<std::uint64_t>(refs.size())));
    }
  }
}

}  // namespace sld::core
