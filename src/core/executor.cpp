#include "core/executor.hpp"

#include <chrono>
#include <utility>

namespace sld::core {

WorkStealingPool::WorkStealingPool(std::size_t workers) {
  const std::size_t n = workers == 0 ? 1 : workers;
  queues_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    queues_.push_back(std::make_unique<Queue>());
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    threads_.emplace_back([this, i] { worker_loop(i); });
}

WorkStealingPool::~WorkStealingPool() {
  {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

std::size_t WorkStealingPool::resolve_jobs(std::size_t jobs) {
  if (jobs != 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void WorkStealingPool::run(std::vector<std::function<void()>> tasks) {
  const std::lock_guard<std::mutex> run_lock(run_mutex_);
  if (tasks.empty()) return;

  first_error_ = nullptr;

  // Publish the batch size BEFORE any task becomes poppable: a lingering
  // worker that grabs a task the moment it lands must never drive
  // remaining_ below zero.
  remaining_.store(tasks.size(), std::memory_order_release);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    Queue& q = *queues_[i % queues_.size()];
    const std::lock_guard<std::mutex> lock(q.mutex);
    q.tasks.push_back(Task{std::move(tasks[i]), i});
  }

  {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    ++epoch_;
  }
  work_cv_.notify_all();

  {
    std::unique_lock<std::mutex> lock(state_mutex_);
    done_cv_.wait(lock, [this] {
      return remaining_.load(std::memory_order_acquire) == 0;
    });
  }

  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void WorkStealingPool::worker_loop(std::size_t self) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(state_mutex_);
      work_cv_.wait(lock,
                    [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
    }
    drain(self);
  }
}

void WorkStealingPool::drain(std::size_t self) {
  // Escalating politeness: spin-yield briefly (a neighbour may publish a
  // stolen-from deque any moment), then sleep in short slices so an idle
  // worker doesn't burn a core while one long trial finishes elsewhere.
  unsigned idle_rounds = 0;
  for (;;) {
    Task task;
    if (pop_own(self, task) || steal(self, task)) {
      idle_rounds = 0;
      execute(task);
      continue;
    }
    if (remaining_.load(std::memory_order_acquire) == 0) return;
    if (++idle_rounds < 64) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
}

bool WorkStealingPool::pop_own(std::size_t self, Task& out) {
  Queue& q = *queues_[self];
  const std::lock_guard<std::mutex> lock(q.mutex);
  if (q.tasks.empty()) return false;
  out = std::move(q.tasks.back());
  q.tasks.pop_back();
  return true;
}

bool WorkStealingPool::steal(std::size_t self, Task& out) {
  const std::size_t n = queues_.size();
  for (std::size_t k = 1; k < n; ++k) {
    Queue& victim = *queues_[(self + k) % n];
    const std::lock_guard<std::mutex> lock(victim.mutex);
    if (victim.tasks.empty()) continue;
    out = std::move(victim.tasks.front());
    victim.tasks.pop_front();
    steals_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void WorkStealingPool::execute(Task& task) {
  try {
    task.fn();
  } catch (...) {
    const std::lock_guard<std::mutex> lock(error_mutex_);
    if (first_error_ == nullptr || task.index < first_error_index_) {
      first_error_ = std::current_exception();
      first_error_index_ = task.index;
    }
  }
  if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Last task of the batch: run() may be asleep on done_cv_. Taking the
    // lock before notifying closes the missed-wakeup window against its
    // predicate check.
    const std::lock_guard<std::mutex> lock(state_mutex_);
    done_cv_.notify_all();
  }
}

}  // namespace sld::core
