#include "core/secure_localization.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "attack/collusion.hpp"
#include "attack/wormhole.hpp"
#include "util/stats.hpp"

namespace sld::core {

namespace {
sim::ChannelConfig channel_config_for(const SystemConfig& config) {
  sim::ChannelConfig cc;
  cc.loss_probability = config.channel_loss_probability;
  cc.faults = config.faults;
  return cc;
}
}  // namespace

SecureLocalizationSystem::SecureLocalizationSystem(SystemConfig config)
    : config_(config),
      ctx_(std::make_unique<SystemContext>(config_)),
      network_(channel_config_for(config_), config_.seed ^ 0xc4a27e1ULL),
      detecting_registry_(sim::kNonBeaconIdBase, sim::kNonBeaconIdLimit) {
  {
    obs::ScopedTimerMs timer(ctx_->instruments, "phase.deployment_ms");
    util::Rng deploy_rng = ctx_->rng.fork(0xdeb107);
    deployment_ = sim::deploy_random(config_.deployment, deploy_rng);
  }

  obs::ScopedTimerMs provision_timer(ctx_->instruments,
                                     "phase.provisioning_ms");
  if (config_.paper_wormhole) {
    attack::install_paper_wormhole(network_.channel(),
                                   config_.deployment.comm_range_ft);
  }
  for (const auto& link : config_.custom_wormholes)
    network_.channel().add_wormhole(link);
  if (config_.extra_random_wormholes > 0) {
    util::Rng wh_rng = ctx_->rng.fork(0x3072);
    attack::install_random_wormholes(
        network_.channel(), config_.deployment.field,
        config_.extra_random_wormholes, config_.deployment.comm_range_ft,
        wh_rng);
  }

  build_nodes();
  // Lifecycle runs need the deployment roster at the base station (and in
  // the durable store, so WAL restore re-registers it before replay): the
  // corroboration check weighs reporters by position and the coverage
  // guard bins beacons into cells. Gated — registering beacons on a
  // lifecycle-disabled station is a no-op, but we skip even that.
  if (config_.revocation.lifecycle.enabled) {
    std::vector<std::pair<sim::NodeId, util::Vec2>> roster;
    for (const auto& spec : deployment_.nodes)
      if (spec.beacon) roster.emplace_back(spec.id, spec.position);
    ctx_->cluster.set_beacon_roster(roster);
  }
  ctx_->scheduler = &network_.scheduler();
  ctx_->faults = &network_.channel().faults();

  // Wire one sink-backed tracer (clocked by the trial's scheduler) through
  // every instrumented layer. With no sink this constructs an off tracer
  // and every emit site stays a single cached branch.
  sim::Scheduler* sched = &network_.scheduler();
  obs::Tracer tracer(config_.trace_sink, [sched]() {
    return static_cast<std::int64_t>(sched->now());
  });
  ctx_->tracer = tracer;
  network_.channel().set_tracer(tracer);
  ctx_->detector->set_tracer(tracer);
  ctx_->cluster.set_tracer(tracer);
  ctx_->ingest.set_tracer(tracer);
  ctx_->dissemination.set_tracer(tracer);

  setup_telemetry();
  setup_memstats();

  if (tracer.on()) {
    tracer.emit(
        tracer.event("trial.start")
            .f("seed", config_.seed)
            .f("nodes", static_cast<std::uint64_t>(deployment_.nodes.size()))
            .f("beacons", static_cast<std::uint64_t>(benign_nodes_.size() +
                                                     malicious_nodes_.size()))
            .f("malicious",
               static_cast<std::uint64_t>(malicious_nodes_.size()))
            .f("sensors", static_cast<std::uint64_t>(sensor_nodes_.size())));
    // Ground-truth beacon roster: trace consumers join verdicts against it
    // to separate true detections from false positives.
    for (const auto& spec : deployment_.nodes) {
      if (!spec.beacon) continue;
      tracer.emit(tracer.event("node.beacon")
                      .f("id", spec.id)
                      .f("x", spec.position.x)
                      .f("y", spec.position.y)
                      .f("malicious", spec.malicious));
    }
  }
}

void SecureLocalizationSystem::build_nodes() {
  const double range = config_.deployment.comm_range_ft;

  // Real sensor IDs must be reserved before detecting IDs are drawn, so no
  // detecting ID collides with a deployed sensor.
  for (const auto& spec : deployment_.nodes) {
    if (!spec.beacon) detecting_registry_.reserve_real_id(spec.id);
  }

  util::Rng id_rng = ctx_->rng.fork(0x1d5);
  for (const auto& spec : deployment_.nodes) {
    if (spec.beacon) {
      ctx_->truth[spec.id] = BeaconTruth{spec.position, spec.malicious};
      if (spec.malicious) {
        attack::MaliciousBeaconStrategy strategy(
            config_.strategy, ctx_->rng.fork(0xeb11 + spec.id)());
        auto& node = network_.emplace_node<MaliciousBeaconNode>(
            spec.id, spec.position, range, *ctx_, std::move(strategy));
        malicious_nodes_.push_back(&node);
      } else {
        const auto ids = detecting_registry_.allocate(
            spec.id, config_.detecting_ids, id_rng);
        auto& node = network_.emplace_node<BeaconNode>(
            spec.id, spec.position, range, *ctx_, ids);
        for (const auto alias : ids) network_.add_alias(alias, node);
        benign_nodes_.push_back(&node);
      }
    } else {
      auto& node = network_.emplace_node<SensorNode>(spec.id, spec.position,
                                                     range, *ctx_);
      sensor_nodes_.push_back(&node);
    }
  }

  // Connectivity-driven target lists: detecting beacons probe every beacon
  // they can reach (directly or through a wormhole — the wormhole is how
  // they would have heard of it); sensors query the same set.
  for (auto* beacon : benign_nodes_) {
    std::vector<sim::NodeId> targets;
    for (const auto id : network_.connected_nodes(beacon->id())) {
      const sim::Node* other = network_.node(id);
      if (other != nullptr && other->is_beacon()) targets.push_back(id);
    }
    beacon->set_probe_targets(std::move(targets));
  }
  for (auto* sensor : sensor_nodes_) {
    std::vector<sim::NodeId> targets;
    for (const auto id : network_.connected_nodes(sensor->id())) {
      const sim::Node* other = network_.node(id);
      if (other != nullptr && other->is_beacon()) targets.push_back(id);
    }
    sensor->set_query_targets(std::move(targets));
  }
}

void SecureLocalizationSystem::schedule_collusion() {
  if (!config_.collusion || malicious_nodes_.empty()) return;

  std::vector<sim::NodeId> colluders;
  for (const auto* m : malicious_nodes_) colluders.push_back(m->id());
  std::vector<sim::NodeId> benign_targets;
  for (const auto* b : benign_nodes_) benign_targets.push_back(b->id());
  util::Rng shuffle_rng = ctx_->rng.fork(0xc0111);
  shuffle_rng.shuffle(benign_targets);

  const auto plan = attack::plan_collusion(
      colluders, benign_targets, config_.revocation.report_quota,
      config_.revocation.alert_threshold);

  // Colluders flood as early as possible; transport jitter still
  // interleaves their alerts with honest ones.
  for (const auto& alert : plan.alerts)
    ctx_->submit_alert(alert.reporter, alert.target, /*collusion_alert=*/true);

  // Alert-storm flood: on top of the quota-exact plan above, each colluder
  // fires extra forged alerts at Zipf-skewed benign victims spread across
  // the storm window. Fresh nonces per submission keep the flood from
  // collapsing into duplicates at the base station.
  if (config_.storm.flood_alerts_per_colluder == 0 || benign_targets.empty())
    return;
  util::Rng storm_rng = ctx_->rng.fork(0x57024);
  const util::ZipfSampler zipf(benign_targets.size(),
                               config_.storm.zipf_exponent);
  const auto window = static_cast<std::uint64_t>(
      std::max<sim::SimTime>(config_.storm.duration_ns, 1));
  for (const auto c : colluders) {
    for (std::size_t i = 0; i < config_.storm.flood_alerts_per_colluder;
         ++i) {
      const sim::NodeId victim =
          benign_targets[zipf.sample(storm_rng.uniform01())];
      const sim::SimTime at =
          config_.probe_phase_start +
          static_cast<sim::SimTime>(storm_rng.uniform_u64(window));
      network_.scheduler().schedule_at(at, [this, c, victim]() {
        ctx_->submit_alert(c, victim, /*collusion_alert=*/true);
      });
    }
  }
}

void SecureLocalizationSystem::schedule_framing() {
  if (!config_.framing.enabled || malicious_nodes_.empty()) return;

  std::vector<std::pair<sim::NodeId, util::Vec2>> colluders;
  for (const auto* m : malicious_nodes_)
    colluders.emplace_back(m->id(), m->position());
  std::vector<std::pair<sim::NodeId, util::Vec2>> benign;
  for (const auto* b : benign_nodes_)
    benign.emplace_back(b->id(), b->position());
  std::vector<std::pair<sim::SimTime, sim::SimTime>> outages;
  for (const auto& w : config_.failover.primary_outages)
    outages.emplace_back(w.start, w.end);

  util::Rng framing_rng = ctx_->rng.fork(0xf4a41);
  const auto plan = attack::plan_framing(
      colluders, benign, config_.framing, config_.revocation.report_quota,
      config_.probe_phase_start, outages, framing_rng);
  for (const auto& alert : plan.alerts) {
    const sim::NodeId reporter = alert.reporter;
    const sim::NodeId target = alert.target;
    network_.scheduler().schedule_at(alert.at, [this, reporter, target]() {
      ++ctx_->metrics.framing_alerts_submitted;
      ctx_->submit_alert(reporter, target, /*collusion_alert=*/true);
    });
  }
}

void SecureLocalizationSystem::setup_telemetry() {
  if (!config_.telemetry.enabled) return;
  // Mirror instruments exist only for telemetry runs, so default metric
  // snapshots (and the bench goldens) stay byte-identical to the seed.
  obs::MetricsRegistry& reg = ctx_->instruments;
  tel_.tx = &reg.counter("channel.tx");
  tel_.deliveries = &reg.counter("channel.deliveries");
  tel_.drops = &reg.counter("channel.drops");
  tel_.alerts = &reg.counter("alerts.submitted");
  tel_.revocations = &reg.counter("bs.revocations");
  tel_.sched_executed = &reg.counter("sched.executed");
  tel_.sched_pending = &reg.gauge("sched.pending");
  if (config_.ingest.enabled())
    tel_.breaker = &reg.gauge("bs.ingest.breaker_state");
  tel_.in_service = &reg.gauge("bs.cluster.in_service");
  if (config_.revocation.lifecycle.enabled) {
    tel_.quarantines = &reg.counter("bs.quarantines");
    tel_.exonerations = &reg.counter("bs.exonerations");
    tel_.escalations = &reg.counter("bs.escalations");
    tel_.min_usable = &reg.gauge("coverage.min_usable");
  }

  ctx_->timeseries =
      std::make_unique<obs::TimeseriesSampler>(reg, config_.telemetry);
  ctx_->timeseries->set_presample_hook(
      [this](std::int64_t t) { sync_telemetry(t); });

  if (!config_.slo_rules.empty()) {
    ctx_->slo = std::make_unique<obs::SloMonitor>(config_.slo_rules);
    ctx_->slo->add_tracer(ctx_->tracer);
    if (config_.telemetry.sink != nullptr &&
        config_.telemetry.sink != config_.trace_sink) {
      // Breach markers also ride the telemetry stream, so ts_report can
      // annotate timelines without the main trace.
      sim::Scheduler* sched = &network_.scheduler();
      ctx_->slo->add_tracer(obs::Tracer(config_.telemetry.sink, [sched]() {
        return static_cast<std::int64_t>(sched->now());
      }));
    }
    obs::SloMonitor* slo = ctx_->slo.get();
    ctx_->timeseries->set_window_observer(
        [slo](const obs::WindowSample& w) { slo->on_window(w); });
  }

  // Drive the sampler from the scheduler clock: windows close exactly when
  // sim time crosses their end, with zero extra events scheduled.
  obs::TimeseriesSampler* ts = ctx_->timeseries.get();
  network_.scheduler().set_time_probe([ts](sim::SimTime t) {
    ts->advance_to(static_cast<std::int64_t>(t));
  });
}

namespace {
/// Raises a monotone mirror counter to the live value (never decreases).
void sync_counter(obs::Counter* counter, std::uint64_t live) {
  if (counter != nullptr && live > counter->value())
    counter->inc(live - counter->value());
}

/// The memstats scope tags mirrored into the registry, in registration
/// order (matching the SLD_MEM_SCOPE tags spread through the simulation).
constexpr const char* kMemScopes[] = {"scheduler", "channel",   "messages",
                                      "arq",       "detection", "revocation"};
}  // namespace

void SecureLocalizationSystem::setup_memstats() {
  obs::MetricsRegistry& reg = ctx_->instruments;
  if (config_.telemetry.enabled && config_.telemetry.sample_rss)
    rss_gauge_ = &reg.gauge("mem.rss_kb");
  if (!config_.memstats) return;

  // Process-wide switch: idempotent and sticky, so concurrent trials under
  // --jobs can all flip it without coordination.
  obs::Memstats::set_enabled(true);

  for (const char* tag : kMemScopes) {
    MemMirror m;
    m.tag = tag;
    const std::string prefix = std::string("mem.") + tag;
    m.allocs = &reg.counter(prefix + ".allocs");
    m.bytes = &reg.counter(prefix + ".bytes");
    m.frees = &reg.counter(prefix + ".frees");
    // Baseline against this worker thread's running totals: the delta at
    // any later point on the same thread is this trial's own contribution
    // (trials are sealed to one worker, see DESIGN.md §14).
    m.start = obs::Memstats::thread_totals_for(tag);
    mem_.push_back(m);
  }
  // Start the peak-live high-water mark fresh, so the end-of-trial peak is
  // the trial's own (plus any pre-trial live bytes — an upper bound).
  obs::Memstats::reset_thread_peaks();

  // Hot-path micro-instruments. Shapes: queue depth and sift distances are
  // small integers; wait/lifetime are nanoseconds spanning ns..minutes, so
  // log-scaled.
  hot_.queue_depth = &reg.histogram("hot.queue_depth", 1.0, 1 << 20, 64,
                                    obs::HistogramScale::kLog);
  hot_.sift_up = &reg.histogram("hot.sift_up", 0.0, 64.0, 64);
  hot_.sift_down = &reg.histogram("hot.sift_down", 0.0, 64.0, 64);
  hot_.event_wait_ns = &reg.histogram("hot.event_wait_ns", 1.0, 1e12, 64,
                                      obs::HistogramScale::kLog);
  hot_.scan_fanout = &reg.histogram("hot.scan_fanout", 1.0, 4096.0, 64,
                                    obs::HistogramScale::kLog);
  hot_.packet_lifetime_ns = &reg.histogram("hot.packet_lifetime_ns", 1.0,
                                           1e12, 64, obs::HistogramScale::kLog);
  hot_.sift_up_steps = &reg.counter("hot.sift_up_steps");
  hot_.sift_down_steps = &reg.counter("hot.sift_down_steps");
  hot_.scans = &reg.counter("hot.scans");
  hot_.scan_nodes = &reg.counter("hot.scan_nodes");
  network_.scheduler().set_hot_stats(&hot_);
  network_.channel().set_hot_stats(&hot_);
}

void SecureLocalizationSystem::fold_memstats() {
  if (mem_.empty()) return;
  memhot_.enabled = true;
  for (auto& m : mem_) {
    const obs::MemScopeStats now = obs::Memstats::thread_totals_for(m.tag);
    const std::uint64_t allocs = now.allocs - m.start.allocs;
    const std::uint64_t bytes = now.alloc_bytes - m.start.alloc_bytes;
    const std::uint64_t frees = now.frees - m.start.frees;
    sync_counter(m.allocs, allocs);
    sync_counter(m.bytes, bytes);
    sync_counter(m.frees, frees);
    memhot_.allocs += allocs;
    memhot_.alloc_bytes += bytes;
    memhot_.frees += frees;
    memhot_.freed_bytes += now.freed_bytes - m.start.freed_bytes;
    if (now.peak_live_bytes > 0)
      memhot_.peak_live_bytes += static_cast<std::uint64_t>(now.peak_live_bytes);
  }
  memhot_.max_queue_depth = network_.scheduler().max_pending();
  memhot_.queue_depth_p99 = hot_.queue_depth->p99();
  memhot_.sift_up_steps = network_.scheduler().sift_up_steps();
  memhot_.sift_down_steps = network_.scheduler().sift_down_steps();
  memhot_.scans = hot_.scans->value();
  memhot_.scan_nodes = hot_.scan_nodes->value();
  memhot_.packet_lifetime_p99_ns = hot_.packet_lifetime_ns->p99();
}

void SecureLocalizationSystem::sync_telemetry(std::int64_t t) {
  const sim::ChannelStats& ch = network_.channel().stats();
  sync_counter(tel_.tx, ch.transmissions);
  sync_counter(tel_.deliveries, ch.deliveries);
  sync_counter(tel_.drops, ch.losses + ch.dropped_by_fault +
                               ch.partition_drops + ch.crashed_drops);
  sync_counter(tel_.alerts, ctx_->metrics.alerts_submitted);
  sync_counter(tel_.revocations, ctx_->metrics.revocation_times.size());
  sync_counter(tel_.sched_executed, network_.scheduler().executed());
  tel_.sched_pending->set(
      static_cast<double>(network_.scheduler().pending()));
  if (tel_.breaker != nullptr) {
    // Poll the breaker as a pure function of time — advancing the pipeline
    // from a sampling hook would perturb the trial.
    tel_.breaker->set(static_cast<double>(static_cast<int>(
        ctx_->ingest.breaker_state(static_cast<sim::SimTime>(t)))));
  }
  tel_.in_service->set(ctx_->cluster.in_service() ? 1.0 : 0.0);
  if (tel_.quarantines != nullptr) {
    const revocation::BaseStationStats& bs = ctx_->bs().stats();
    sync_counter(tel_.quarantines, bs.quarantines);
    sync_counter(tel_.exonerations, bs.exonerations);
    sync_counter(tel_.escalations, bs.escalations);
    // Coverage floor as the defender sees it: the sparsest occupied cell's
    // usable-beacon count at the window edge (pure lazy-decay reads).
    const auto census =
        ctx_->bs().lifecycle().census_all(static_cast<sim::SimTime>(t));
    std::uint32_t min_usable = 0;
    bool first = true;
    for (const auto& cell : census) {
      if (first || cell.usable < min_usable) min_usable = cell.usable;
      first = false;
    }
    tel_.min_usable->set(static_cast<double>(min_usable));
  }
  for (auto& m : mem_) {
    const obs::MemScopeStats now = obs::Memstats::thread_totals_for(m.tag);
    sync_counter(m.allocs, now.allocs - m.start.allocs);
    sync_counter(m.bytes, now.alloc_bytes - m.start.alloc_bytes);
    sync_counter(m.frees, now.frees - m.start.frees);
  }
  if (rss_gauge_ != nullptr)
    rss_gauge_->set(static_cast<double>(obs::current_rss_kb()));
}

void SecureLocalizationSystem::schedule_failover() {
  // Drive cluster availability transitions at their exact times, so
  // bs.failover traces and the recovery-latency histogram are stamped with
  // the true transition instant rather than the next alert's arrival. An
  // empty transition list (the default config) schedules nothing.
  for (const auto& tr : ctx_->cluster.transitions()) {
    const sim::SimTime t = tr.t;
    network_.scheduler().schedule_at(
        t, [this, t]() { ctx_->ingest.advance(t); });
  }
}

void SecureLocalizationSystem::schedule_finalize() {
  std::size_t max_targets = 0;
  for (const auto* s : sensor_nodes_)
    max_targets = std::max(
        max_targets, network_.connected_nodes(s->id()).size());
  const sim::SimTime finalize_at =
      config_.sensor_phase_start +
      static_cast<sim::SimTime>(max_targets + 2) *
          config_.transmission_stagger +
      sim::kSecond;
  // Pump the ingestion pipeline right before the sensors finalize (the
  // scheduler is FIFO-stable at equal times), so every queued alert whose
  // service time has elapsed is committed and disseminated first. Gated:
  // the default config must schedule no extra event (sched.events is part
  // of the bench goldens).
  if (ctx_->ingest.enabled()) {
    network_.scheduler().schedule_at(finalize_at, [this, finalize_at]() {
      ctx_->ingest.advance(finalize_at);
    });
  }
  for (auto* sensor : sensor_nodes_) {
    network_.scheduler().schedule_at(finalize_at,
                                     [sensor]() { sensor->finalize(); });
  }
}

TrialSummary SecureLocalizationSystem::run() {
  if (ran_)
    throw std::logic_error("SecureLocalizationSystem::run: already ran");
  ran_ = true;

  // Telemetry windows start on the scheduler's t = 0 grid; the ts.meta
  // stream header goes out before any window.
  if (ctx_->timeseries)
    ctx_->timeseries->begin(
        static_cast<std::int64_t>(network_.scheduler().now()), config_.seed);

  // The probing and localization phases are timed separately. Splitting
  // the run at sensor_phase_start executes the exact same event sequence
  // as one uninterrupted run (events are ordered by time either way).
  {
    obs::ScopedTimerMs timer(ctx_->instruments, "phase.probing_ms");
    network_.start_all();
    schedule_collusion();
    schedule_framing();
    schedule_failover();
    schedule_finalize();
    network_.scheduler().run_until(config_.sensor_phase_start);
  }
  {
    obs::ScopedTimerMs timer(ctx_->instruments, "phase.localization_ms");
    network_.run();
  }
  // Force-commit anything still queued in the ingestion shards (and
  // journal deferred degraded-mode commits), then apply any availability
  // transitions past the last executed event, so summarize() reads the
  // final state.
  ctx_->ingest.drain(network_.scheduler().now());
  ctx_->cluster.advance(std::numeric_limits<sim::SimTime>::max());
  // Materialize pending exonerations and emit the end-of-trial coverage
  // census before any state is read. No-op with the lifecycle disabled.
  if (config_.revocation.lifecycle.enabled)
    ctx_->cluster.settle(network_.scheduler().now());

  // Close the telemetry stream: complete windows through now, plus the
  // partial tail, so the final drain/commit burst is visible in the last
  // window and the SLO monitor sees end-of-trial state.
  if (ctx_->timeseries)
    ctx_->timeseries->finish(
        static_cast<std::int64_t>(network_.scheduler().now()));

  fold_memstats();

  ctx_->instruments.gauge("sched.events")
      .set(static_cast<double>(network_.scheduler().executed()));
  ctx_->instruments.gauge("sched.max_queue_depth")
      .set(static_cast<double>(network_.scheduler().max_pending()));
  // Per-node radio energy, iterated in registration order so the
  // histogram's floating-point sums are deterministic.
  for (const auto* node : network_.nodes()) {
    ctx_->node_energy_hist->observe(
        network_.channel().node_radio(node->id()).energy_uj());
  }

  if (ctx_->tracer.on()) {
    std::size_t malicious_revoked = 0;
    std::size_t benign_revoked = 0;
    for (const auto* m : malicious_nodes_)
      if (ctx_->bs().is_revoked(m->id())) ++malicious_revoked;
    for (const auto* b : benign_nodes_)
      if (ctx_->bs().is_revoked(b->id())) ++benign_revoked;
    ctx_->tracer.emit(
        ctx_->tracer.event("trial.end")
            .f("seed", config_.seed)
            .f("malicious_revoked",
               static_cast<std::uint64_t>(malicious_revoked))
            .f("benign_revoked", static_cast<std::uint64_t>(benign_revoked))
            .f("sensors_localized", ctx_->metrics.sensors_localized));
  }
  return summarize();
}

TrialSummary SecureLocalizationSystem::summarize() const {
  TrialSummary s;
  s.benign_beacons = benign_nodes_.size();
  s.malicious_beacons = malicious_nodes_.size();
  s.sensors = sensor_nodes_.size();

  const sim::SimTime end_time = network_.scheduler().now();
  double requester_sum = 0.0;
  for (const auto* m : malicious_nodes_) {
    requester_sum +=
        static_cast<double>(network_.connected_nodes(m->id()).size());
    if (ctx_->bs().is_revoked(m->id()))
      ++s.malicious_revoked;
    else if (ctx_->bs().is_quarantined(m->id(), end_time))
      ++s.malicious_quarantined;
  }
  s.avg_requesters_per_malicious =
      malicious_nodes_.empty()
          ? 0.0
          : requester_sum / static_cast<double>(malicious_nodes_.size());
  for (const auto* b : benign_nodes_) {
    if (ctx_->bs().is_revoked(b->id()))
      ++s.benign_revoked;
    else if (ctx_->bs().is_quarantined(b->id(), end_time))
      ++s.benign_quarantined;
  }
  if (config_.revocation.lifecycle.enabled) {
    std::uint32_t min_usable = std::numeric_limits<std::uint32_t>::max();
    for (const auto& cell : ctx_->bs().lifecycle().census_all(end_time))
      min_usable = std::min(min_usable, cell.usable);
    if (min_usable != std::numeric_limits<std::uint32_t>::max())
      s.min_cell_usable = min_usable;
  }
  s.detection_rate =
      malicious_nodes_.empty()
          ? 0.0
          : static_cast<double>(s.malicious_revoked +
                                s.malicious_quarantined) /
                static_cast<double>(malicious_nodes_.size());
  s.false_positive_rate =
      benign_nodes_.empty()
          ? 0.0
          : static_cast<double>(s.benign_revoked) /
                static_cast<double>(benign_nodes_.size());

  std::uint64_t affected = 0;
  for (const auto& [beacon, count] : ctx_->metrics.affected_by_malicious)
    affected += count;
  s.affected_sensor_references = affected;
  s.avg_affected_per_malicious =
      malicious_nodes_.empty()
          ? 0.0
          : static_cast<double>(affected) /
                static_cast<double>(malicious_nodes_.size());

  s.sensors_localized = ctx_->metrics.sensors_localized;
  s.sensors_unlocalized = ctx_->metrics.sensors_unlocalized;
  s.mean_localization_error_ft = ctx_->metrics.localization_error_ft.mean();
  s.max_localization_error_ft = ctx_->metrics.localization_error_ft.max();
  if (!ctx_->metrics.localization_errors_ft.empty()) {
    // Nearest-rank p99 over the raw per-sensor sample.
    std::vector<double> errs = ctx_->metrics.localization_errors_ft;
    std::sort(errs.begin(), errs.end());
    const std::size_t rank = (errs.size() * 99 + 99) / 100;
    s.p99_localization_error_ft = errs[std::min(rank, errs.size()) - 1];
  }

  double latency_sum_ms = 0.0;
  std::size_t latency_count = 0;
  for (const auto& [beacon, at] : ctx_->metrics.revocation_times) {
    const auto truth_it = ctx_->truth.find(beacon);
    if (truth_it == ctx_->truth.end() || !truth_it->second.malicious) continue;
    latency_sum_ms += static_cast<double>(at) /
                      static_cast<double>(sim::kMillisecond);
    ++latency_count;
  }
  if (latency_count > 0)
    s.mean_malicious_revocation_latency_ms =
        latency_sum_ms / static_cast<double>(latency_count);
  s.radio_energy_uj = network_.channel().total_radio().energy_uj();

  s.sched_events = network_.scheduler().executed();
  s.rtt_x_max_cycles = ctx_->rtt_calibration.x_max_cycles;
  s.raw = ctx_->metrics;
  s.base_station = ctx_->bs().stats();
  s.cluster = ctx_->cluster.stats();
  s.durable = ctx_->cluster.wal().stats();
  s.ingest = ctx_->ingest.stats();
  s.channel = network_.channel().stats();
  s.memhot = memhot_;
  s.metrics_json = ctx_->instruments.snapshot_json();
  if (ctx_->slo) {
    s.slo.enabled = true;
    s.slo.healthy = ctx_->slo->healthy();
    s.slo.breaches = ctx_->slo->breaches();
    s.slo.recovers = ctx_->slo->recovers();
    // Fold the verdict + breach log into the snapshot document (insert
    // before the closing brace).
    s.metrics_json.insert(s.metrics_json.size() - 1,
                          ",\"slo\":" + ctx_->slo->verdict_json());
  }
  return s;
}

}  // namespace sld::core
