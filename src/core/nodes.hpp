// Protocol node implementations wiring the detection/revocation logic into
// the simulator: benign beacons (which double as detecting nodes), malicious
// beacons, non-beacon sensors, and the shared per-trial SystemContext.
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "attack/strategy.hpp"
#include "core/config.hpp"
#include "crypto/pairwise.hpp"
#include "detection/detector.hpp"
#include "localization/location_reference.hpp"
#include "localization/multilateration.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "ranging/rssi.hpp"
#include "ranging/rtt.hpp"
#include "ranging/toa.hpp"
#include "ranging/wormhole_detector.hpp"
#include "revocation/base_station.hpp"
#include "revocation/dissemination.hpp"
#include "revocation/failover.hpp"
#include "revocation/shard.hpp"
#include "sim/network.hpp"
#include "sim/recoverable.hpp"
#include "util/stats.hpp"

namespace sld::core {

/// Ground truth the metrics oracle keeps about every beacon.
struct BeaconTruth {
  util::Vec2 true_position;
  bool malicious = false;
};

/// Raw counters collected during one trial.
struct Metrics {
  // Probing (detecting-node) phase.
  std::uint64_t probes_sent = 0;
  std::uint64_t probe_replies = 0;
  std::uint64_t consistency_flags = 0;
  std::uint64_t probe_ignored_wormhole = 0;
  std::uint64_t probe_ignored_local_replay = 0;
  std::uint64_t alerts_submitted = 0;
  std::uint64_t collusion_alerts_submitted = 0;
  std::uint64_t mac_failures = 0;

  // ARQ / fault-tolerance accounting (all zero with the default config).
  std::uint64_t probe_retransmissions = 0;
  std::uint64_t probe_no_response = 0;  // ProbeOutcome::kNoResponse count
  std::uint64_t sensor_retransmissions = 0;
  std::uint64_t sensor_no_response = 0;
  std::uint64_t alert_retransmissions = 0;
  std::uint64_t alerts_delivery_failed = 0;
  /// Alerts (including queued retries) that died because their reporter
  /// crashed before the delivery attempt fired — crash windows lose the
  /// reporter's volatile ARQ state.
  std::uint64_t alerts_dropped_reporter_crash = 0;
  /// Delivery attempts that found no base station available (primary down,
  /// standby not yet promoted); retried under the ARQ policy like a loss.
  std::uint64_t alerts_station_unavailable = 0;

  /// (revoked beacon, simulation time) per revocation, in order — the
  /// basis of revocation-latency reporting under lossy alert transport.
  std::vector<std::pair<sim::NodeId, sim::SimTime>> revocation_times;

  // Sensor (localization) phase.
  std::uint64_t sensor_requests = 0;
  std::uint64_t sensor_replies = 0;
  std::uint64_t sensor_discarded_wormhole = 0;
  std::uint64_t sensor_discarded_rtt = 0;
  std::uint64_t sensor_refs_dropped_revoked = 0;
  /// References dropped because their beacon was quarantined (always 0
  /// while the lifecycle is disabled).
  std::uint64_t sensor_refs_dropped_quarantined = 0;
  std::uint64_t sensors_localized = 0;
  std::uint64_t sensors_unlocalized = 0;
  util::RunningStat localization_error_ft;
  /// Per-sensor localization errors in finalize order — the raw sample
  /// the benches compute tail quantiles (p99) from.
  std::vector<double> localization_errors_ft;
  /// Framing accusations scheduled by the framing plan (0 unless the
  /// framing attack is enabled).
  std::uint64_t framing_alerts_submitted = 0;
  /// Fallback-ladder rung counts (all 0 while the ladder is disabled).
  std::uint64_t sensors_tier_mlat = 0;
  std::uint64_t sensors_tier_robust = 0;
  std::uint64_t sensors_tier_centroid = 0;

  /// Per malicious beacon: how many distinct sensors accepted (and kept,
  /// post-revocation) its effective malicious reference.
  std::unordered_map<sim::NodeId, std::uint64_t> affected_by_malicious;

  /// Every alert submitted this trial, in submission order — consumed by
  /// the distributed-revocation evaluation, which replays them as local
  /// votes instead of base-station reports.
  struct LoggedAlert {
    sim::NodeId reporter = 0;
    sim::NodeId target = 0;
    bool collusion = false;
  };
  std::vector<LoggedAlert> alert_log;
};

/// Shared per-trial state every node holds a reference to. Owned by
/// SecureLocalizationSystem; nodes must not outlive it.
struct SystemContext {
  explicit SystemContext(const SystemConfig& config);

  const SystemConfig& config;
  crypto::PairwiseKeyManager keys;
  ranging::RssiRangingModel rssi;
  ranging::ToaRangingModel toa;
  ranging::MoteTimingModel timing;

  /// Maximum honest error of the configured ranging feature, feet — the
  /// consistency detector's threshold.
  double max_ranging_error_ft() const;
  ranging::RttCalibration rtt_calibration;
  std::unique_ptr<ranging::WormholeDetector> wormhole_detector;
  std::optional<detection::Detector> detector;  // built after calibration
  /// Base-station side of the protocol. With the default FailoverConfig
  /// this is a pass-through single station, bit-for-bit the seed behaviour;
  /// chaos configs give it durable storage, outages, and a standby.
  revocation::BaseStationCluster cluster;
  /// Overload-resilient ingestion in front of the cluster. Disabled (the
  /// default) it is an exact pass-through; enabled it owns admission,
  /// shard queues, and the WAL circuit breaker. Alerts enter through
  /// deliver_alert_attempt -> ingest.submit.
  revocation::IngestPipeline ingest;
  /// The station whose word currently counts (revocation list, counters).
  const revocation::BaseStation& bs() const { return cluster.authority(); }
  revocation::DisseminationModel dissemination;
  std::unordered_map<sim::NodeId, BeaconTruth> truth;
  Metrics metrics;
  util::Rng rng;
  sim::Scheduler* scheduler = nullptr;  // set by the system before start
  /// Fault injector of the trial's channel (set by the system alongside
  /// `scheduler`); nullptr means no fault model exists (unit-test contexts).
  const sim::FaultInjector* faults = nullptr;
  /// Monotonic alert-nonce source: every submitted alert gets a fresh nonce
  /// so base-station dedup can tell a retransmitted copy from new evidence.
  std::uint64_t next_alert_nonce = 0;

  /// Event tracer shared by every node (off until the system installs a
  /// sink-backed one alongside the scheduler).
  obs::Tracer tracer;

  /// Per-trial instrument registry, snapshotted into
  /// TrialSummary::metrics_json. The histogram pointers below are
  /// registered by the constructor and stay valid for the trial.
  obs::MetricsRegistry instruments;
  obs::Histogram* rtt_probe_hist = nullptr;      // rtt.probe_cycles
  obs::Histogram* rtt_query_hist = nullptr;      // rtt.query_cycles
  obs::Histogram* residual_hist = nullptr;       // ranging.residual_ft
  obs::Histogram* alert_counter_hist = nullptr;  // bs.alert_counter
  obs::Histogram* node_energy_hist = nullptr;    // radio.node_energy_uj
  /// recovery.latency_ms — registered only when failover is configured, so
  /// default metric snapshots (and the bench goldens) are unchanged.
  obs::Histogram* recovery_hist = nullptr;

  /// Streaming telemetry sampler and SLO monitor — constructed by the
  /// system only when config.telemetry.enabled (same goldens discipline as
  /// the conditional instruments above). The chaos campaign reads the
  /// sampler's ring tail as failure context.
  std::unique_ptr<obs::TimeseriesSampler> timeseries;
  std::unique_ptr<obs::SloMonitor> slo;

  /// Delivers an alert to the base station with a small random transport
  /// jitter, so honest and colluding alerts interleave realistically.
  /// With `alert_loss_probability > 0` each delivery attempt can fail;
  /// failed attempts are retried under the ARQ policy and alerts that
  /// exhaust every attempt are counted in `alerts_delivery_failed`.
  void submit_alert(sim::NodeId reporter, sim::NodeId target,
                    bool collusion_alert);

  /// One alert-transport delivery attempt (attempt 0 is the original).
  /// `nonce` identifies the alert across retries, so a duplicated copy can
  /// never double-count at the base station.
  void deliver_alert_attempt(sim::NodeId reporter, sim::NodeId target,
                             std::uint64_t nonce, std::size_t attempt);

  /// Measured distance + observed RTT for one received beacon reply.
  struct SignalMeasurement {
    double distance_ft = 0.0;
    double rtt_cycles = 0.0;
    /// Ground-truth distance to the radiating position — measured minus
    /// this is the ranging residual the metrics histogram tracks.
    double physical_distance_ft = 0.0;
  };
  /// `rtt_skew_cycles` is the clock-drift-induced RTT measurement error of
  /// this receiver/sender pair (0 with drift disabled); callers compute it
  /// via FaultInjector::rtt_skew_cycles with their *physical* node id.
  SignalMeasurement measure(const sim::Delivery& delivery,
                            const sim::BeaconReplyPayload& payload,
                            const util::Vec2& receiver_position,
                            util::Rng& node_rng,
                            double rtt_skew_cycles = 0.0) const;
};

/// A benign beacon node: answers beacon requests truthfully and probes the
/// beacons around it through its m detecting IDs (paper §2.1).
///
/// Crash-recovery semantics: pending probes and the reported-targets set
/// live in volatile RAM, so a crash loses them. A reboot inside the probe
/// phase restarts the probe schedule from scratch; the base station's nonce
/// dedup keeps re-transported alert copies idempotent, while a genuinely
/// re-detected alert after reboot counts as fresh evidence.
class BeaconNode final : public sim::Node, public sim::Recoverable {
 public:
  BeaconNode(sim::NodeId id, util::Vec2 position, double range_ft,
             SystemContext& ctx, std::vector<sim::NodeId> detecting_ids);

  bool is_beacon() const override { return true; }
  const std::vector<sim::NodeId>& detecting_ids() const {
    return detecting_ids_;
  }

  /// Beacons this node will probe (set by the system from connectivity).
  void set_probe_targets(std::vector<sim::NodeId> targets);

  void start() override;
  void on_message(const sim::Delivery& delivery) override;
  void on_crash(sim::SimTime now) override;
  void on_reboot(sim::SimTime now, sim::SimTime downtime) override;

  std::size_t alerts_reported() const { return reported_.size(); }

 private:
  /// One probe exchange in flight. Carries the ARQ attempt counter for the
  /// current round and the measurements accumulated across the k rounds of
  /// a median-of-k probe (each round uses a fresh nonce, so a retransmitted
  /// round restarts its RTT clock instead of absorbing the timeout).
  struct PendingProbe {
    sim::NodeId target = 0;
    sim::NodeId detecting_id = 0;
    std::size_t attempt = 0;  // retransmissions used for the current round
    std::vector<double> rtt_samples;
    std::vector<double> dist_samples;
  };

  void handle_request(const sim::Delivery& delivery);
  void handle_probe_reply(const sim::Delivery& delivery);
  /// (Re)schedules one probe per (target, detecting id), staggered from
  /// max(now, probe_phase_start) — start() and post-reboot restarts share it.
  void schedule_probes();
  void send_probe(sim::NodeId target, sim::NodeId detecting_id);
  void send_probe_round(PendingProbe probe, bool is_retransmission);
  void on_probe_timeout(std::uint64_t nonce);

  SystemContext& ctx_;
  std::vector<sim::NodeId> detecting_ids_;
  std::vector<sim::NodeId> probe_targets_;
  std::unordered_map<std::uint64_t, PendingProbe> pending_;  // by nonce
  std::unordered_set<sim::NodeId> reported_;  // one alert per target
  util::Rng rng_;
};

/// A compromised beacon node following the (p_n, p_w, p_l) strategy. It
/// never probes or reports honest alerts; collusion alerts are scheduled by
/// the system from the collusion plan.
class MaliciousBeaconNode final : public sim::Node {
 public:
  MaliciousBeaconNode(sim::NodeId id, util::Vec2 position, double range_ft,
                      SystemContext& ctx,
                      attack::MaliciousBeaconStrategy strategy);

  bool is_beacon() const override { return true; }
  const attack::MaliciousBeaconStrategy& strategy() const { return strategy_; }

  void on_message(const sim::Delivery& delivery) override;

 private:
  SystemContext& ctx_;
  attack::MaliciousBeaconStrategy strategy_;
  util::Rng rng_;
};

/// A non-beacon sensor: requests beacon signals from the beacons around it,
/// filters them (§2.2 pipelines), drops revoked beacons, and multilaterates.
///
/// Crash-recovery semantics: pending queries and already-accepted location
/// references are volatile; a reboot inside the sensor phase re-queries
/// every target from scratch. A sensor that is down when finalize() fires
/// counts as unlocalized.
class SensorNode final : public sim::Node, public sim::Recoverable {
 public:
  SensorNode(sim::NodeId id, util::Vec2 position, double range_ft,
             SystemContext& ctx);

  /// Beacons this sensor will query (set by the system from connectivity).
  void set_query_targets(std::vector<sim::NodeId> targets);

  void start() override;
  void on_message(const sim::Delivery& delivery) override;
  void on_crash(sim::SimTime now) override;
  void on_reboot(sim::SimTime now, sim::SimTime downtime) override;

  /// Called by the system after the sensor phase: applies revocations,
  /// localizes, and records metrics.
  void finalize();

  const std::optional<localization::LocalizationResult>& result() const {
    return result_;
  }

 private:
  struct AcceptedReference {
    localization::LocationReference ref;
    bool effective_malicious = false;  // ground-truth label
  };

  /// One beacon query in flight (ARQ state mirrors BeaconNode's probes).
  struct PendingQuery {
    sim::NodeId target = 0;
    std::size_t attempt = 0;
  };

  /// (Re)schedules one query per target, staggered from
  /// max(now, sensor_phase_start) — start() and post-reboot restarts.
  void schedule_queries();
  void send_query(PendingQuery query, bool is_retransmission);
  void on_query_timeout(std::uint64_t nonce);

  SystemContext& ctx_;
  std::vector<sim::NodeId> query_targets_;
  std::unordered_map<std::uint64_t, PendingQuery> pending_;  // by nonce
  std::vector<AcceptedReference> accepted_;
  std::optional<localization::LocalizationResult> result_;
  util::Rng rng_;
};

}  // namespace sld::core
