// Work-stealing trial executor (the scale half of the experiment engine;
// see core/experiment.hpp for the aggregation half).
//
// A WorkStealingPool owns N worker threads, each with its own bounded-lock
// deque. `run(tasks)` hands task i to deque i % N, wakes the workers, and
// blocks until every task has executed exactly once: a worker drains its
// own deque LIFO (hot caches for consecutive trials) and, when empty,
// steals FIFO from the other deques round-robin — so a straggler trial
// never strands the queue behind it. Tasks must be independent; the pool
// provides no ordering between them.
//
// Determinism contract: the pool itself is NOT where determinism lives —
// task execution order is timing-dependent by design. Callers that need
// deterministic output (core::run_experiment, the chaos campaign) buffer
// each task's results into a per-task slot and merge the slots in task
// order after run() returns; run() returning happens-after every task's
// side effects, so the merge loop reads them race-free.
//
// Exception contract: a throwing task never loses the others. Every task
// still runs; the first exception by *task index* (not completion time) is
// rethrown from run() after the pool drains, matching what a serial loop
// that ran every task and reported the earliest failure would do.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace sld::core {

class WorkStealingPool {
 public:
  /// Spawns `workers` threads (at least 1); they idle on a condition
  /// variable until run() supplies work.
  explicit WorkStealingPool(std::size_t workers);

  /// Joins every worker. Must not be called while run() is in flight on
  /// another thread.
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  /// Executes every task exactly once across the workers and blocks until
  /// all complete (the calling thread does not execute tasks). Reusable:
  /// consecutive run() calls reuse the same threads. Rethrows the
  /// lowest-index task exception, if any, after every task has finished.
  void run(std::vector<std::function<void()>> tasks);

  std::size_t workers() const { return queues_.size(); }

  /// Tasks executed by a worker that did not own their deque — the
  /// work-stealing observability counter (monotone across run() calls).
  std::uint64_t steals() const {
    return steals_.load(std::memory_order_relaxed);
  }

  /// Maps a --jobs value to a worker count: 0 means "all hardware
  /// threads" (hardware_concurrency, at least 1), anything else is taken
  /// literally.
  static std::size_t resolve_jobs(std::size_t jobs);

 private:
  struct Task {
    std::function<void()> fn;
    std::size_t index = 0;
  };
  /// One worker's deque. A plain mutex per deque: owners pop the back,
  /// thieves pop the front; trial-granularity tasks make contention
  /// negligible next to the milliseconds each task runs for.
  struct Queue {
    std::mutex mutex;
    std::deque<Task> tasks;
  };

  void worker_loop(std::size_t self);
  /// Runs tasks until none remain anywhere in this run() generation.
  void drain(std::size_t self);
  bool pop_own(std::size_t self, Task& out);
  bool steal(std::size_t self, Task& out);
  void execute(Task& task);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> threads_;

  /// Serializes concurrent run() callers (the pool runs one batch at a
  /// time; a second caller queues behind the first).
  std::mutex run_mutex_;

  /// Wake/sleep machinery: epoch_ bumps once per run() so sleeping
  /// workers wake exactly when a new batch arrives.
  std::mutex state_mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::uint64_t epoch_ = 0;
  bool stop_ = false;

  /// Tasks not yet finished in the current batch. Set before any task is
  /// published, decremented after a task's body returns — run() waiting
  /// for 0 therefore happens-after every task side effect.
  std::atomic<std::size_t> remaining_{0};
  std::atomic<std::uint64_t> steals_{0};

  std::mutex error_mutex_;
  std::size_t first_error_index_ = 0;
  std::exception_ptr first_error_;
};

}  // namespace sld::core
