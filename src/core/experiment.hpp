// Multi-trial experiment runner: repeats a SystemConfig across seeds and
// aggregates the TrialSummary quantities the figures plot.
//
// Trials are independent, seed-deterministic units, so they parallelize
// embarrassingly: `jobs > 1` fans them out across a WorkStealingPool
// (core/executor.hpp), each worker running complete trials with its own
// Scheduler/Network/RNG/MetricsRegistry and per-trial buffered trace and
// telemetry sinks. Results are merged strictly in seed order after the
// pool drains, so every statistic, golden, metrics_json rollup, and
// flushed trace/timeseries stream is byte-identical to a `jobs = 1` run
// (tests/test_executor.cpp proves this property; DESIGN.md §13 states the
// ownership and merge-ordering rules). The only values that legitimately
// differ across jobs levels are host wall-clock measurements
// (AggregateSummary::trial_wall_ms and the `phase.*_ms` gauges inside
// metrics_json), which exist to measure the host, not the simulation.
#pragma once

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "analysis/formulas.hpp"
#include "core/executor.hpp"
#include "core/secure_localization.hpp"
#include "util/stats.hpp"

namespace sld::core {

struct ExperimentConfig {
  SystemConfig base;
  std::size_t trials = 5;
  /// Seed of trial i is base.seed + i.
  bool keep_trial_summaries = false;
  /// Concurrent trials: 1 (the default) runs the classic serial loop on
  /// the calling thread — no pool, no worker threads, bit-for-bit the
  /// pre-executor behaviour. 0 means one job per hardware thread. N > 1
  /// runs up to N trials concurrently with seed-ordered merge.
  std::size_t jobs = 1;
};

struct AggregateSummary {
  util::RunningStat detection_rate;
  util::RunningStat false_positive_rate;
  util::RunningStat affected_per_malicious;  // N'
  util::RunningStat mean_localization_error_ft;
  util::RunningStat requesters_per_malicious;  // measured N_c
  util::RunningStat sensors_localized;
  /// Mean malicious-revocation latency, ms (trials where something
  /// malicious was revoked).
  util::RunningStat revocation_latency_ms;
  /// Whole-network radio energy per trial, microjoules.
  util::RunningStat radio_energy_uj;
  /// Host wall-clock time per trial, milliseconds (profiling, not
  /// simulation output — varies run to run and across jobs levels).
  util::RunningStat trial_wall_ms;
  /// Throughput denominators summed across trials: scheduler events and
  /// radio transmissions — the bench protocol's events/sec and
  /// packets/sec numerators.
  std::uint64_t total_sched_events = 0;
  std::uint64_t total_packets = 0;
  /// SLO health across trials (all zero unless telemetry + rules are on):
  /// total breach firings and trials that ended with a rule still in
  /// breach.
  std::uint64_t total_slo_breaches = 0;
  std::uint64_t slo_unhealthy_trials = 0;
  /// Memory & hot-path roll-up merged across trials (counts summed, depth
  /// and p99s maxed). Inert defaults unless SystemConfig::memstats is on;
  /// the integer counts are exact and identical at any jobs level.
  obs::MemHotTotals memhot;
  std::vector<TrialSummary> trials;  // filled iff keep_trial_summaries
};

/// Runs `config.trials` independent trials, `config.jobs` at a time.
AggregateSummary run_experiment(const ExperimentConfig& config);

/// Runs `fn(0) .. fn(count - 1)` — independent, self-contained work items,
/// typically one experiment sweep point each — up to `jobs` at a time on a
/// WorkStealingPool and returns the results in index order. `jobs <= 1`
/// (after resolve_jobs) runs the classic serial loop on the calling thread
/// with no pool at all. Because each item computes everything it needs
/// inside `fn` and the fold happens strictly in index order after the pool
/// drains, output built from the returned vector is byte-identical at any
/// jobs level (the discipline DESIGN.md §13 sets for trials, lifted to
/// sweep points).
template <typename Fn>
auto run_indexed(std::size_t count, std::size_t jobs, Fn&& fn)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  using Result = decltype(fn(std::size_t{0}));
  std::vector<Result> results(count);
  std::size_t workers = WorkStealingPool::resolve_jobs(jobs);
  if (workers > count) workers = count;
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) results[i] = fn(i);
    return results;
  }
  std::vector<std::function<void()>> tasks;
  tasks.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    tasks.push_back([&results, &fn, i] { results[i] = fn(i); });
  WorkStealingPool pool(workers);
  pool.run(std::move(tasks));
  return results;
}

/// Builds analytical ModelParams matching a system config, with N_c taken
/// from the measured average (`measured_requesters`) so theory and
/// simulation are compared on the same footing (the paper feeds its
/// analysis the same deployment parameters).
analysis::ModelParams model_params_for(const SystemConfig& config,
                                       double measured_requesters);

}  // namespace sld::core
