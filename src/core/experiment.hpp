// Multi-trial experiment runner: repeats a SystemConfig across seeds and
// aggregates the TrialSummary quantities the figures plot.
#pragma once

#include <cstddef>
#include <vector>

#include "analysis/formulas.hpp"
#include "core/secure_localization.hpp"
#include "util/stats.hpp"

namespace sld::core {

struct ExperimentConfig {
  SystemConfig base;
  std::size_t trials = 5;
  /// Seed of trial i is base.seed + i.
  bool keep_trial_summaries = false;
};

struct AggregateSummary {
  util::RunningStat detection_rate;
  util::RunningStat false_positive_rate;
  util::RunningStat affected_per_malicious;  // N'
  util::RunningStat mean_localization_error_ft;
  util::RunningStat requesters_per_malicious;  // measured N_c
  util::RunningStat sensors_localized;
  /// Mean malicious-revocation latency, ms (trials where something
  /// malicious was revoked).
  util::RunningStat revocation_latency_ms;
  /// Whole-network radio energy per trial, microjoules.
  util::RunningStat radio_energy_uj;
  /// Host wall-clock time per trial, milliseconds (profiling, not
  /// simulation output — varies run to run).
  util::RunningStat trial_wall_ms;
  /// Throughput denominators summed across trials: scheduler events and
  /// radio transmissions — the bench protocol's events/sec and
  /// packets/sec numerators.
  std::uint64_t total_sched_events = 0;
  std::uint64_t total_packets = 0;
  /// SLO health across trials (all zero unless telemetry + rules are on):
  /// total breach firings and trials that ended with a rule still in
  /// breach.
  std::uint64_t total_slo_breaches = 0;
  std::uint64_t slo_unhealthy_trials = 0;
  std::vector<TrialSummary> trials;  // filled iff keep_trial_summaries
};

/// Runs `config.trials` independent trials.
AggregateSummary run_experiment(const ExperimentConfig& config);

/// Builds analytical ModelParams matching a system config, with N_c taken
/// from the measured average (`measured_requesters`) so theory and
/// simulation are compared on the same footing (the paper feeds its
/// analysis the same deployment parameters).
analysis::ModelParams model_params_for(const SystemConfig& config,
                                       double measured_requesters);

}  // namespace sld::core
