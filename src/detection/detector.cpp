#include "detection/detector.hpp"

#include "check/invariant.hpp"
#include "obs/memstats.hpp"
#include "obs/profiler.hpp"

namespace sld::detection {

Detector::Detector(DetectorConfig config,
                   const ranging::WormholeDetector* wormhole_detector)
    : consistency_(config.max_ranging_error_ft),
      replay_filter_(config.replay, wormhole_detector) {}

namespace {
const char* outcome_name(ProbeOutcome outcome) {
  switch (outcome) {
    case ProbeOutcome::kConsistent:
      return "consistent";
    case ProbeOutcome::kIgnoredWormholeReplay:
      return "ignored_wormhole";
    case ProbeOutcome::kIgnoredLocalReplay:
      return "ignored_local_replay";
    case ProbeOutcome::kAlert:
      return "alert";
    case ProbeOutcome::kNoResponse:
      return "no_response";
  }
  return "unknown";
}
}  // namespace

ProbeOutcome Detector::evaluate(const SignalObservation& observation,
                                util::Rng& rng) const {
  SLD_PROF_SCOPE("detect.evaluate");
  SLD_MEM_SCOPE("detection");
  const ConsistencyResult consistency =
      consistency_.check(observation.receiver_position,
                         observation.claimed_position,
                         observation.measured_distance_ft);
  if (trace_.on()) {
    trace_.emit(trace_.event("detect.consistency")
                    .f("node", observation.receiver_id)
                    .f("target", observation.sender_id)
                    .f("measured_ft", observation.measured_distance_ft)
                    .f("expected_ft", consistency.calculated_ft)
                    .f("deviation_ft", consistency.deviation_ft)
                    .f("threshold_ft", consistency_.max_error_ft())
                    .f("malicious", consistency.malicious));
  }
  ProbeOutcome outcome = ProbeOutcome::kConsistent;
  if (consistency.malicious) {
    switch (replay_filter_.evaluate_at_detecting_node(observation, rng)) {
      case SignalVerdict::kWormholeReplay:
        outcome = ProbeOutcome::kIgnoredWormholeReplay;
        break;
      case SignalVerdict::kLocalReplay:
        outcome = ProbeOutcome::kIgnoredLocalReplay;
        break;
      case SignalVerdict::kGenuine:
        outcome = ProbeOutcome::kAlert;
        break;
    }
  }
  if (trace_.on()) {
    trace_.emit(trace_.event("detect.verdict")
                    .f("node", observation.receiver_id)
                    .f("target", observation.sender_id)
                    .f("outcome", outcome_name(outcome)));
  }
  SLD_INVARIANT(consistency.malicious ==
                    (consistency.deviation_ft > consistency_.max_error_ft()),
                "consistency verdict must match the measured-vs-expected "
                "deviation: deviation="
                    << consistency.deviation_ft
                    << " ft, threshold=" << consistency_.max_error_ft()
                    << " ft, malicious=" << consistency.malicious);
  SLD_INVARIANT((outcome == ProbeOutcome::kConsistent) ==
                    !consistency.malicious,
                "verdict consistency: outcome " << outcome_name(outcome)
                    << " contradicts consistency.malicious="
                    << consistency.malicious);
  return outcome;
}

}  // namespace sld::detection
