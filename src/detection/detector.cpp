#include "detection/detector.hpp"

namespace sld::detection {

Detector::Detector(DetectorConfig config,
                   const ranging::WormholeDetector* wormhole_detector)
    : consistency_(config.max_ranging_error_ft),
      replay_filter_(config.replay, wormhole_detector) {}

ProbeOutcome Detector::evaluate(const SignalObservation& observation,
                                util::Rng& rng) const {
  if (!consistency_.is_malicious(observation.receiver_position,
                                 observation.claimed_position,
                                 observation.measured_distance_ft)) {
    return ProbeOutcome::kConsistent;
  }
  switch (replay_filter_.evaluate_at_detecting_node(observation, rng)) {
    case SignalVerdict::kWormholeReplay:
      return ProbeOutcome::kIgnoredWormholeReplay;
    case SignalVerdict::kLocalReplay:
      return ProbeOutcome::kIgnoredLocalReplay;
    case SignalVerdict::kGenuine:
      return ProbeOutcome::kAlert;
  }
  return ProbeOutcome::kAlert;  // unreachable
}

}  // namespace sld::detection
