#include "detection/replay_filter.hpp"

#include <stdexcept>

namespace sld::detection {

ReplayFilter::ReplayFilter(ReplayFilterConfig config,
                           const ranging::WormholeDetector* detector)
    : config_(config), detector_(detector) {
  if (config_.rtt_x_max_cycles <= 0.0)
    throw std::invalid_argument("ReplayFilter: x_max must be positive");
  if (detector_ == nullptr)
    throw std::invalid_argument("ReplayFilter: null wormhole detector");
}

bool ReplayFilter::rtt_looks_replayed(double observed_rtt_cycles) const {
  return observed_rtt_cycles > config_.rtt_x_max_cycles;
}

namespace {
ranging::WormholeEvidence to_evidence(const SignalObservation& obs) {
  ranging::WormholeEvidence e;
  e.receiver_id = obs.receiver_id;
  e.sender_id = obs.sender_id;
  e.receiver_knows_position = obs.receiver_knows_position;
  e.via_wormhole = obs.via_wormhole;
  e.sender_faked_indication = obs.sender_faked_wormhole_indication;
  e.receiver_position = obs.receiver_position;
  e.claimed_sender_position = obs.claimed_position;
  e.measured_distance_ft = obs.measured_distance_ft;
  e.sender_range_ft = obs.target_range_ft;
  return e;
}
}  // namespace

SignalVerdict ReplayFilter::evaluate_at_detecting_node(
    const SignalObservation& obs, util::Rng& rng) const {
  if (!obs.receiver_knows_position)
    throw std::invalid_argument(
        "evaluate_at_detecting_node: detecting nodes know their position");
  // Stage 1 (§2.2.1): geographic precondition AND wormhole detector. The
  // detector draws randomness, so it must run exactly when the
  // precondition holds — tracing must never force the call.
  const double calculated =
      util::distance(obs.receiver_position, obs.claimed_position);
  const bool precondition = calculated > obs.target_range_ft;
  const bool detected =
      precondition && detector_->detects(to_evidence(obs), rng);
  if (trace_.on()) {
    trace_.emit(trace_.event("detect.wormhole")
                    .f("node", obs.receiver_id)
                    .f("target", obs.sender_id)
                    .f("role", "detecting")
                    .f("calculated_ft", calculated)
                    .f("range_ft", obs.target_range_ft)
                    .f("precondition", precondition)
                    .f("detected", detected));
  }
  if (detected) return SignalVerdict::kWormholeReplay;
  // Stage 2 (§2.2.2): the RTT check.
  const bool replay = rtt_looks_replayed(obs.observed_rtt_cycles);
  if (trace_.on()) {
    trace_.emit(trace_.event("detect.rtt")
                    .f("node", obs.receiver_id)
                    .f("target", obs.sender_id)
                    .f("role", "detecting")
                    .f("rtt_cycles", obs.observed_rtt_cycles)
                    .f("x_max_cycles", config_.rtt_x_max_cycles)
                    .f("replay", replay));
  }
  if (replay) return SignalVerdict::kLocalReplay;
  return SignalVerdict::kGenuine;
}

SignalVerdict ReplayFilter::evaluate_at_nonbeacon(
    const SignalObservation& obs, util::Rng& rng) const {
  // Non-beacons cannot evaluate the geographic precondition (no known own
  // position); the wormhole detector runs unconditionally.
  const bool detected = detector_->detects(to_evidence(obs), rng);
  if (trace_.on()) {
    trace_.emit(trace_.event("detect.wormhole")
                    .f("node", obs.receiver_id)
                    .f("target", obs.sender_id)
                    .f("role", "nonbeacon")
                    .f("detected", detected));
  }
  if (detected) return SignalVerdict::kWormholeReplay;
  const bool replay = rtt_looks_replayed(obs.observed_rtt_cycles);
  if (trace_.on()) {
    trace_.emit(trace_.event("detect.rtt")
                    .f("node", obs.receiver_id)
                    .f("target", obs.sender_id)
                    .f("role", "nonbeacon")
                    .f("rtt_cycles", obs.observed_rtt_cycles)
                    .f("x_max_cycles", config_.rtt_x_max_cycles)
                    .f("replay", replay));
  }
  if (replay) return SignalVerdict::kLocalReplay;
  return SignalVerdict::kGenuine;
}

}  // namespace sld::detection
