// Replay filtering (paper §2.2): the wormhole stage and the RTT stage.
//
// Two call sites run (parts of) this pipeline:
//  * a *detecting node* that has already flagged a signal as malicious runs
//    the full §2.2.1 algorithm — geographic precondition (calculated
//    distance > target's radio range) AND wormhole detector => discard as
//    wormhole replay; otherwise RTT > x_max => discard as local replay;
//    otherwise the signal really came from the target: report an alert;
//  * a *non-beacon node* (which does not know its own location, so cannot
//    run the consistency check or the geographic precondition) runs its
//    wormhole detector and the RTT check on every beacon signal before
//    using it for localization.
#pragma once

#include <cstdint>
#include <utility>

#include "obs/trace.hpp"
#include "ranging/wormhole_detector.hpp"
#include "util/geometry.hpp"
#include "util/rng.hpp"

namespace sld::detection {

/// Outcome of filtering one beacon signal.
enum class SignalVerdict {
  kGenuine,        // passed every stage: came directly from the target
  kWormholeReplay, // discarded by the wormhole stage
  kLocalReplay,    // discarded by the RTT stage
};

/// Everything the receiving node observes about one beacon signal.
struct SignalObservation {
  /// Physical endpoint identities (the wormhole detector's per-link
  /// verdict is keyed on them).
  std::uint32_t receiver_id = 0;
  std::uint32_t sender_id = 0;

  /// Receiver's own location — only meaningful at detecting nodes (set
  /// `receiver_knows_position = false` at non-beacon nodes).
  util::Vec2 receiver_position;
  bool receiver_knows_position = true;

  /// Claimed beacon location from the packet.
  util::Vec2 claimed_position;
  /// Distance measured from the signal, in feet.
  double measured_distance_ft = 0.0;
  /// Nominal radio range of the target node, in feet.
  double target_range_ft = 0.0;

  /// Observed round-trip time, in CPU cycles.
  double observed_rtt_cycles = 0.0;

  /// Ground truth / manipulations forwarded from the channel + payload,
  /// consumed by the wormhole detector model.
  bool via_wormhole = false;
  bool sender_faked_wormhole_indication = false;
};

struct ReplayFilterConfig {
  /// Calibrated maximum no-attack RTT (x_max from Figure 4), CPU cycles.
  double rtt_x_max_cycles = 0.0;
};

class ReplayFilter {
 public:
  /// `detector` is borrowed and must outlive the filter.
  ReplayFilter(ReplayFilterConfig config,
               const ranging::WormholeDetector* detector);

  const ReplayFilterConfig& config() const { return config_; }

  /// Full detecting-node pipeline (§2.2.1 + §2.2.2), run after the
  /// consistency check flagged the signal as malicious.
  SignalVerdict evaluate_at_detecting_node(const SignalObservation& obs,
                                           util::Rng& rng) const;

  /// Non-beacon pipeline: wormhole detector + RTT check on every signal.
  SignalVerdict evaluate_at_nonbeacon(const SignalObservation& obs,
                                      util::Rng& rng) const;

  /// The RTT stage alone: true if the observed RTT exceeds x_max.
  bool rtt_looks_replayed(double observed_rtt_cycles) const;

  /// Installs the event tracer (off by default). Emits `detect.wormhole`
  /// and `detect.rtt` stage records. Tracing never changes which stages
  /// run, so RNG draws are identical with and without it.
  void set_tracer(sld::obs::Tracer tracer) { trace_ = std::move(tracer); }

 private:
  ReplayFilterConfig config_;
  const ranging::WormholeDetector* detector_;
  sld::obs::Tracer trace_;
};

}  // namespace sld::detection
