// The malicious-beacon-signal detector (paper §2.1, Figure 2).
//
// A detecting node knows its own location; the beacon packet carries the
// target's claimed location; the signal yields a measured distance. If
//
//     | sqrt((x-x')^2 + (y-y')^2) - measured | > maximum measurement error
//
// the beacon signal must be malicious: an honest measurement from an honest
// beacon at the claimed position can never violate the bound. Conversely, a
// consistent-but-lying signal "is equivalent to the situation where a
// benign beacon node located at (x', y') sends a benign beacon signal" —
// harmless by construction.
#pragma once

#include "util/geometry.hpp"

namespace sld::detection {

/// The full evidence behind one consistency verdict — what forensics and
/// tracing report alongside the boolean.
struct ConsistencyResult {
  /// Distance implied by the two locations, in feet.
  double calculated_ft = 0.0;
  /// |calculated - measured|, the quantity compared against the bound.
  double deviation_ft = 0.0;
  bool malicious = false;
};

class ConsistencyCheck {
 public:
  /// `max_error_ft` is the maximum honest ranging error (paper: 4 ft).
  explicit ConsistencyCheck(double max_error_ft);

  double max_error_ft() const { return max_error_ft_; }

  /// Distance the detecting node computes from the two locations.
  static double calculated_distance(const util::Vec2& detector_position,
                                    const util::Vec2& claimed_position);

  /// The verdict plus the measured-vs-calculated evidence behind it.
  ConsistencyResult check(const util::Vec2& detector_position,
                          const util::Vec2& claimed_position,
                          double measured_distance_ft) const;

  /// True if the signal is malicious: measured vs calculated distance
  /// differ by more than the maximum measurement error.
  bool is_malicious(const util::Vec2& detector_position,
                    const util::Vec2& claimed_position,
                    double measured_distance_ft) const;

 private:
  double max_error_ft_;
};

}  // namespace sld::detection
