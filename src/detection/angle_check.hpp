// AoA variant of the §2.1 consistency detector ("our approach can be
// easily revised to deal with location estimation based on other
// measurements"). The detecting node measures the bearing the beacon
// signal physically arrived from and compares it against the bearing of
// the location claimed in the beacon packet; a mismatch beyond the antenna
// array's calibrated error bound means the signal is malicious.
//
// The angular threshold is only meaningful when the claimed position is
// far enough away: at very short ranges an honest position error of a few
// feet swings the bearing arbitrarily, so claims closer than
// `min_meaningful_distance_ft` are never flagged by the angle check alone.
#pragma once

#include "ranging/aoa.hpp"
#include "util/geometry.hpp"

namespace sld::detection {

class AngleConsistencyCheck {
 public:
  AngleConsistencyCheck(double max_angle_error_rad,
                        double min_meaningful_distance_ft = 10.0);

  double max_angle_error_rad() const { return max_angle_error_rad_; }

  /// True if the measured arrival bearing is inconsistent with the
  /// location claimed in the beacon packet.
  bool is_malicious(const util::Vec2& detector_position,
                    const util::Vec2& claimed_position,
                    double measured_bearing_rad) const;

 private:
  double max_angle_error_rad_;
  double min_meaningful_distance_ft_;
};

}  // namespace sld::detection
