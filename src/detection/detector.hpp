// The complete detecting-node decision procedure (paper §2): consistency
// check first; on a malicious signal, the replay filters decide whether the
// signal can be attributed to the target node; only then is an alert
// raised. Pure logic — the simulation's node classes delegate here, and the
// unit/property tests drive it directly.
#pragma once

#include <cstdint>
#include <utility>

#include "detection/beacon_check.hpp"
#include "detection/replay_filter.hpp"
#include "obs/trace.hpp"

namespace sld::detection {

/// What the detecting node concluded about one probed beacon signal.
enum class ProbeOutcome {
  kConsistent,              // signal passed the consistency check: no alert
  kIgnoredWormholeReplay,   // malicious but attributed to a wormhole replay
  kIgnoredLocalReplay,      // malicious but attributed to a local replay
  kAlert,                   // malicious and direct: the target is malicious
  kNoResponse,              // probe exchange timed out (every ARQ attempt
                            // exhausted); never produced by evaluate(),
                            // which requires an observed signal
};

struct DetectorConfig {
  double max_ranging_error_ft = 4.0;
  ReplayFilterConfig replay;
};

class Detector {
 public:
  /// `wormhole_detector` is borrowed and must outlive the Detector.
  Detector(DetectorConfig config,
           const ranging::WormholeDetector* wormhole_detector);

  const ConsistencyCheck& consistency() const { return consistency_; }
  const ReplayFilter& replay_filter() const { return replay_filter_; }

  /// Runs the full §2 pipeline on one probed beacon signal.
  ProbeOutcome evaluate(const SignalObservation& observation,
                        util::Rng& rng) const;

  /// Installs the event tracer (off by default) on the detector and its
  /// replay filter. Emits `detect.consistency` (with the measured vs
  /// expected distances and the threshold that fired) and the final
  /// `detect.verdict`; stage records come from the replay filter.
  void set_tracer(sld::obs::Tracer tracer) {
    replay_filter_.set_tracer(tracer);
    trace_ = std::move(tracer);
  }

 private:
  ConsistencyCheck consistency_;
  ReplayFilter replay_filter_;
  sld::obs::Tracer trace_;
};

}  // namespace sld::detection
