#include "detection/beacon_check.hpp"

#include <cmath>
#include <stdexcept>

namespace sld::detection {

ConsistencyCheck::ConsistencyCheck(double max_error_ft)
    : max_error_ft_(max_error_ft) {
  if (max_error_ft < 0.0)
    throw std::invalid_argument("ConsistencyCheck: negative error bound");
}

double ConsistencyCheck::calculated_distance(
    const util::Vec2& detector_position, const util::Vec2& claimed_position) {
  return util::distance(detector_position, claimed_position);
}

ConsistencyResult ConsistencyCheck::check(const util::Vec2& detector_position,
                                          const util::Vec2& claimed_position,
                                          double measured_distance_ft) const {
  if (measured_distance_ft < 0.0)
    throw std::invalid_argument("ConsistencyCheck: negative measurement");
  ConsistencyResult r;
  r.calculated_ft = calculated_distance(detector_position, claimed_position);
  r.deviation_ft = std::abs(r.calculated_ft - measured_distance_ft);
  r.malicious = r.deviation_ft > max_error_ft_;
  return r;
}

bool ConsistencyCheck::is_malicious(const util::Vec2& detector_position,
                                    const util::Vec2& claimed_position,
                                    double measured_distance_ft) const {
  return check(detector_position, claimed_position, measured_distance_ft)
      .malicious;
}

}  // namespace sld::detection
