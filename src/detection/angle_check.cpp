#include "detection/angle_check.hpp"

#include <cmath>
#include <stdexcept>

namespace sld::detection {

AngleConsistencyCheck::AngleConsistencyCheck(double max_angle_error_rad,
                                             double min_meaningful_distance_ft)
    : max_angle_error_rad_(max_angle_error_rad),
      min_meaningful_distance_ft_(min_meaningful_distance_ft) {
  if (max_angle_error_rad < 0.0 || max_angle_error_rad > M_PI)
    throw std::invalid_argument("AngleConsistencyCheck: bad angle bound");
  if (min_meaningful_distance_ft < 0.0)
    throw std::invalid_argument("AngleConsistencyCheck: bad distance floor");
}

bool AngleConsistencyCheck::is_malicious(const util::Vec2& detector_position,
                                         const util::Vec2& claimed_position,
                                         double measured_bearing_rad) const {
  if (util::distance(detector_position, claimed_position) <
      min_meaningful_distance_ft_) {
    return false;  // bearing carries no information at point-blank range
  }
  const double expected =
      ranging::true_bearing(detector_position, claimed_position);
  return ranging::angular_distance(measured_bearing_rad, expected) >
         max_angle_error_rad_;
}

}  // namespace sld::detection
