// Detecting-ID provisioning (paper §2.1). Each beacon node is preloaded
// with `m` extra node IDs that are indistinguishable from non-beacon IDs,
// plus the keying material for them, so it can probe other beacons while
// posing as a regular sensor. The registry is held by the deployment
// authority / base station; in-network attackers cannot query it, which is
// exactly what makes the probe requests indistinguishable.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "util/rng.hpp"

namespace sld::crypto {

/// Allocates detecting IDs from an ID range reserved for (real or virtual)
/// non-beacon sensors and remembers which beacon owns which detecting ID.
class DetectingIdRegistry {
 public:
  /// `id_space_begin/end`: half-open range of IDs that read as non-beacon
  /// node IDs. Real non-beacon nodes occupy part of it; detecting IDs are
  /// drawn from the remainder so that an ID's numeric value leaks nothing.
  DetectingIdRegistry(std::uint32_t id_space_begin, std::uint32_t id_space_end);

  /// Allocates `count` fresh detecting IDs for `beacon`, drawn uniformly at
  /// random from the unused portion of the ID space.
  std::vector<std::uint32_t> allocate(std::uint32_t beacon, std::size_t count,
                                      util::Rng& rng);

  /// Marks an ID as used by a real (non-detecting) node, excluding it from
  /// future allocation. Throws if already taken.
  void reserve_real_id(std::uint32_t id);

  /// Owner beacon of a detecting ID, if it is one.
  std::optional<std::uint32_t> owner_of(std::uint32_t detecting_id) const;

  /// All detecting IDs provisioned to `beacon` (empty if none).
  std::vector<std::uint32_t> ids_of(std::uint32_t beacon) const;

  std::size_t allocated_count() const { return owner_.size(); }

 private:
  std::uint32_t begin_;
  std::uint32_t end_;
  std::unordered_map<std::uint32_t, std::uint32_t> owner_;  // id -> beacon
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> by_beacon_;
  std::unordered_map<std::uint32_t, bool> taken_;  // real + detecting
};

}  // namespace sld::crypto
