// SipHash-2-4: a keyed 64-bit PRF (Aumasson & Bernstein, 2012). Used as the
// MAC primitive for beacon packets and as the keyed hash behind sticky
// per-requester attacker decisions. Implemented from scratch — the target
// platform (sensor motes) would never link OpenSSL, and the reference
// vectors below pin the implementation.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace sld::crypto {

/// 128-bit SipHash key.
using Key128 = std::array<std::uint8_t, 16>;

/// SipHash-2-4 of `data` under `key`.
std::uint64_t siphash24(const Key128& key, std::span<const std::uint8_t> data);

/// Convenience: SipHash-2-4 of a 64-bit value (little-endian encoded).
std::uint64_t siphash24_u64(const Key128& key, std::uint64_t value);

/// Derives a subkey from `master` and a 64-bit context label, by using the
/// PRF output of two related labels as the two subkey halves.
Key128 derive_key(const Key128& master, std::uint64_t label);

}  // namespace sld::crypto
