#include "crypto/detecting_ids.hpp"

#include <stdexcept>

namespace sld::crypto {

DetectingIdRegistry::DetectingIdRegistry(std::uint32_t id_space_begin,
                                         std::uint32_t id_space_end)
    : begin_(id_space_begin), end_(id_space_end) {
  if (begin_ >= end_)
    throw std::invalid_argument("DetectingIdRegistry: empty id space");
}

std::vector<std::uint32_t> DetectingIdRegistry::allocate(std::uint32_t beacon,
                                                         std::size_t count,
                                                         util::Rng& rng) {
  const std::uint64_t space = end_ - begin_;
  if (taken_.size() + count > space)
    throw std::runtime_error("DetectingIdRegistry: id space exhausted");
  std::vector<std::uint32_t> out;
  out.reserve(count);
  while (out.size() < count) {
    const auto candidate =
        begin_ + static_cast<std::uint32_t>(rng.uniform_u64(space));
    if (taken_.contains(candidate)) continue;
    taken_.emplace(candidate, true);
    owner_.emplace(candidate, beacon);
    by_beacon_[beacon].push_back(candidate);
    out.push_back(candidate);
  }
  return out;
}

void DetectingIdRegistry::reserve_real_id(std::uint32_t id) {
  if (id < begin_ || id >= end_)
    throw std::invalid_argument("reserve_real_id: id outside the space");
  if (!taken_.emplace(id, true).second)
    throw std::invalid_argument("reserve_real_id: id already taken");
}

std::optional<std::uint32_t> DetectingIdRegistry::owner_of(
    std::uint32_t detecting_id) const {
  const auto it = owner_.find(detecting_id);
  if (it == owner_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::uint32_t> DetectingIdRegistry::ids_of(
    std::uint32_t beacon) const {
  const auto it = by_beacon_.find(beacon);
  if (it == by_beacon_.end()) return {};
  return it->second;
}

}  // namespace sld::crypto
