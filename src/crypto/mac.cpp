#include "crypto/mac.hpp"

#include "obs/profiler.hpp"
#include "util/bytes.hpp"

namespace sld::crypto {

MacTag compute_mac(const Key128& key, std::uint32_t src, std::uint32_t dst,
                   std::span<const std::uint8_t> payload) {
  SLD_PROF_SCOPE("crypto.mac");
  util::ByteWriter w;
  w.u32(src);
  w.u32(dst);
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.bytes(payload);
  return siphash24(key, w.data());
}

bool verify_mac(const Key128& key, std::uint32_t src, std::uint32_t dst,
                std::span<const std::uint8_t> payload, MacTag tag) {
  const MacTag expected = compute_mac(key, src, dst, payload);
  // Branch-free comparison; in the simulator this is about API shape, not
  // a real timing defence.
  return ((expected ^ tag) | (tag ^ expected)) == 0;
}

}  // namespace sld::crypto
