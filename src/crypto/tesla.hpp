// uTESLA broadcast authentication (Perrig, Szewczyk, Wen, Culler, Tygar —
// SPINS, cited by the paper as [24]). The base station's revocation
// notices are broadcasts: per-receiver MACs do not scale, and a plain
// shared key would let any compromised node forge revocations. uTESLA
// fixes this with delayed key disclosure:
//
//  * the sender owns a one-way key chain K_n -> K_{n-1} -> ... -> K_0
//    (K_{i-1} = F(K_i)); receivers hold the commitment K_0;
//  * time is slotted; packets sent in interval i are MACed with K_i;
//  * K_i itself is disclosed d intervals later; receivers accept a packet
//    only if it provably arrived before its key could have been disclosed
//    (the "security condition"), buffer it, and verify once the key
//    arrives and authenticates against the chain.
//
// Clocks are assumed loosely synchronized within a known bound.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "crypto/mac.hpp"
#include "crypto/siphash.hpp"
#include "sim/time.hpp"
#include "util/bytes.hpp"

namespace sld::crypto {

/// One-way function for the key chain: keyed hash with a fixed public
/// domain-separation key (the chain's security rests on one-wayness, not
/// on the key).
Key128 tesla_one_way(const Key128& key);

/// A sender-side one-way key chain.
class TeslaKeyChain {
 public:
  /// Derives a chain of `length` keys from `seed`. Interval i (1-based,
  /// i <= length) uses key K_i; K_0 is the commitment.
  TeslaKeyChain(Key128 seed, std::size_t length);

  std::size_t length() const { return keys_.size() - 1; }
  const Key128& commitment() const { return keys_[0]; }

  /// K_i for 1 <= i <= length().
  const Key128& key(std::size_t interval) const;

  /// Verifies a disclosed key: hashing `key` back (interval - last_known)
  /// times must land on `last_known_key`. This is what receivers run.
  static bool verify_disclosed(const Key128& disclosed, std::size_t interval,
                               const Key128& last_known_key,
                               std::size_t last_known_interval);

 private:
  std::vector<Key128> keys_;  // keys_[i] = K_i
};

struct TeslaConfig {
  /// Duration of one interval.
  sim::SimTime interval = 500 * sim::kMillisecond;
  /// Key-disclosure lag d, in intervals.
  std::size_t disclosure_lag = 2;
  /// Bound on |sender clock - receiver clock|.
  sim::SimTime max_clock_skew = 50 * sim::kMillisecond;
  std::size_t chain_length = 1000;
};

/// An authenticated broadcast packet.
struct TeslaPacket {
  std::size_t interval = 0;
  util::Bytes payload;
  MacTag mac = 0;
};

/// A key disclosure message.
struct TeslaDisclosure {
  std::size_t interval = 0;
  Key128 key{};
};

/// Sender side: MACs payloads with the current interval key and discloses
/// expired keys.
class TeslaBroadcaster {
 public:
  TeslaBroadcaster(TeslaConfig config, Key128 chain_seed);

  const TeslaConfig& config() const { return config_; }
  const Key128& commitment() const { return chain_.commitment(); }

  std::size_t interval_at(sim::SimTime now) const;

  /// Builds an authenticated packet for transmission at `now`.
  TeslaPacket authenticate(util::Bytes payload, sim::SimTime now) const;

  /// The disclosure receivers should be sent at `now` (the key of the
  /// interval that expired `disclosure_lag` intervals ago), if any.
  std::optional<TeslaDisclosure> disclosure_at(sim::SimTime now) const;

 private:
  TeslaConfig config_;
  TeslaKeyChain chain_;
};

/// Receiver side: enforces the security condition, buffers packets, and
/// releases them once their interval key is disclosed and verified.
class TeslaReceiver {
 public:
  TeslaReceiver(TeslaConfig config, Key128 commitment);

  /// Handles an incoming data packet. Returns false if the packet was
  /// rejected outright (security condition violated: its key may already
  /// have been disclosed, so it could be forged).
  bool on_packet(const TeslaPacket& packet, sim::SimTime rx_time);

  /// Handles a key disclosure; authenticates the key against the chain
  /// and, on success, verifies and releases buffered packets from that
  /// interval. Returns false if the disclosed key failed verification.
  bool on_disclosure(const TeslaDisclosure& disclosure);

  /// Authenticated payloads released so far (drained by the caller).
  std::vector<util::Bytes> take_authenticated();

  struct Stats {
    std::uint64_t accepted_buffered = 0;
    std::uint64_t rejected_unsafe = 0;   // security condition violated
    std::uint64_t rejected_bad_mac = 0;  // failed MAC after disclosure
    std::uint64_t rejected_bad_key = 0;  // disclosure didn't match chain
    std::uint64_t authenticated = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  TeslaConfig config_;
  Key128 last_key_;
  std::size_t last_interval_ = 0;  // interval of last_key_ (0 = commitment)
  std::unordered_map<std::size_t, std::vector<TeslaPacket>> buffer_;
  std::vector<util::Bytes> released_;
  Stats stats_;
};

}  // namespace sld::crypto
