// Eschenauer-Gligor random key predistribution [EG02], one of the schemes
// the paper cites ([3,6,7]) for establishing pairwise keys. Each node is
// preloaded with a random k-subset ("key ring") of a global pool of P keys;
// two nodes that share at least one pool key can derive a link key from the
// shared key with the lowest index.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "crypto/siphash.hpp"
#include "util/rng.hpp"

namespace sld::crypto {

/// Identifier of a key in the global pool.
using PoolKeyId = std::uint32_t;

/// The offline key pool held by the deployment authority.
class KeyPool {
 public:
  /// Generates `pool_size` random keys from `rng`.
  KeyPool(std::size_t pool_size, util::Rng& rng);

  std::size_t size() const { return keys_.size(); }
  const Key128& key(PoolKeyId id) const;

  /// Draws a key ring of `ring_size` distinct pool key ids for one node.
  std::vector<PoolKeyId> draw_ring(std::size_t ring_size,
                                   util::Rng& rng) const;

  /// Analytic probability that two random rings of size k share >= 1 key
  /// (the EG connectivity formula), used to size the pool in tests.
  static double share_probability(std::size_t pool_size,
                                  std::size_t ring_size);

 private:
  std::vector<Key128> keys_;
};

/// A node's key ring plus shared-key discovery.
class KeyRing {
 public:
  KeyRing(std::vector<PoolKeyId> ids, const KeyPool& pool);

  const std::vector<PoolKeyId>& ids() const { return ids_; }

  /// Lowest-indexed pool key shared with `other`, if any.
  std::optional<PoolKeyId> shared_key_id(const KeyRing& other) const;

  /// Link key for the shared pool key `id`, bound to the (unordered) node
  /// pair so distinct pairs using the same pool key still get distinct
  /// link keys.
  Key128 link_key(PoolKeyId id, std::uint32_t node_a,
                  std::uint32_t node_b) const;

 private:
  std::vector<PoolKeyId> ids_;     // sorted
  std::vector<Key128> key_material_;  // parallel to ids_
};

}  // namespace sld::crypto
