#include "crypto/polynomial_pool.hpp"

#include <algorithm>
#include <stdexcept>

namespace sld::crypto {

namespace gf {

std::uint64_t add(std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = a + b;  // < 2^62, no overflow
  if (s >= kPrime) s -= kPrime;
  return s;
}

std::uint64_t mul(std::uint64_t a, std::uint64_t b) {
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpedantic"
  const unsigned __int128 prod =
      static_cast<unsigned __int128>(a) * static_cast<unsigned __int128>(b);
  // Mersenne reduction: x = hi * 2^61 + lo = hi + lo (mod 2^61 - 1).
  std::uint64_t lo = static_cast<std::uint64_t>(prod) & kPrime;
  std::uint64_t hi = static_cast<std::uint64_t>(prod >> 61);
#pragma GCC diagnostic pop
  std::uint64_t s = lo + hi;
  if (s >= kPrime) s -= kPrime;
  // hi can be up to ~2^61, one more fold covers it.
  if (s >= kPrime) s -= kPrime;
  return s;
}

}  // namespace gf

namespace {
std::uint64_t random_element(util::Rng& rng) {
  return rng.uniform_u64(gf::kPrime);
}

std::uint64_t reduce(std::uint64_t x) { return x % gf::kPrime; }
}  // namespace

SymmetricBivariatePolynomial::SymmetricBivariatePolynomial(std::size_t t,
                                                           util::Rng& rng)
    : degree_(t) {
  const std::size_t n = t + 1;
  upper_.resize(n * (n + 1) / 2);
  for (auto& c : upper_) c = random_element(rng);
}

std::uint64_t SymmetricBivariatePolynomial::coefficient(std::size_t i,
                                                        std::size_t j) const {
  if (i > j) std::swap(i, j);
  // Packed upper triangle: row r (r <= i) holds n - r entries.
  const std::size_t n = degree_ + 1;
  const std::size_t idx = i * n - i * (i - 1) / 2 + (j - i);
  return upper_[idx];
}

std::uint64_t SymmetricBivariatePolynomial::evaluate(std::uint64_t x,
                                                     std::uint64_t y) const {
  x = reduce(x);
  y = reduce(y);
  // Horner in y of polynomials in x: f(x, y) = sum_j (sum_i a_ij x^i) y^j.
  std::uint64_t result = 0;
  for (std::size_t j = degree_ + 1; j-- > 0;) {
    std::uint64_t inner = 0;
    for (std::size_t i = degree_ + 1; i-- > 0;) {
      inner = gf::add(gf::mul(inner, x), coefficient(i, j));
    }
    result = gf::add(gf::mul(result, y), inner);
  }
  return result;
}

std::vector<std::uint64_t> SymmetricBivariatePolynomial::share_for(
    std::uint64_t node_id) const {
  const std::uint64_t x = reduce(node_id);
  std::vector<std::uint64_t> share(degree_ + 1);
  for (std::size_t j = 0; j <= degree_; ++j) {
    std::uint64_t inner = 0;
    for (std::size_t i = degree_ + 1; i-- > 0;) {
      inner = gf::add(gf::mul(inner, x), coefficient(i, j));
    }
    share[j] = inner;
  }
  return share;
}

PolynomialShare::PolynomialShare(std::uint32_t poly_id, std::uint64_t node_id,
                                 std::vector<std::uint64_t> coefficients)
    : poly_id_(poly_id),
      node_id_(node_id),
      coefficients_(std::move(coefficients)) {
  if (coefficients_.empty())
    throw std::invalid_argument("PolynomialShare: empty share");
}

std::uint64_t PolynomialShare::evaluate(std::uint64_t peer) const {
  const std::uint64_t y = reduce(peer);
  std::uint64_t result = 0;
  for (std::size_t j = coefficients_.size(); j-- > 0;) {
    result = gf::add(gf::mul(result, y), coefficients_[j]);
  }
  return result;
}

Key128 PolynomialShare::pairwise_key(std::uint64_t peer) const {
  const std::uint64_t secret = evaluate(peer);
  Key128 kdf{};
  for (int i = 0; i < 8; ++i)
    kdf[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(secret >> (8 * i));
  const std::uint64_t lo = std::min(node_id_, peer);
  const std::uint64_t hi = std::max(node_id_, peer);
  return derive_key(kdf, (lo << 32) ^ hi ^
                             (static_cast<std::uint64_t>(poly_id_) << 56));
}

PolynomialPool::PolynomialPool(std::size_t pool_size, std::size_t degree,
                               util::Rng& rng)
    : degree_(degree) {
  if (pool_size == 0)
    throw std::invalid_argument("PolynomialPool: empty pool");
  polys_.reserve(pool_size);
  for (std::size_t i = 0; i < pool_size; ++i)
    polys_.emplace_back(degree, rng);
}

std::vector<PolynomialShare> PolynomialPool::provision(std::uint64_t node_id,
                                                       std::size_t count,
                                                       util::Rng& rng) const {
  if (count > polys_.size())
    throw std::invalid_argument("PolynomialPool: count exceeds pool");
  const auto idx = rng.sample_indices(polys_.size(), count);
  std::vector<PolynomialShare> shares;
  shares.reserve(count);
  for (const auto i : idx) {
    shares.emplace_back(static_cast<std::uint32_t>(i), node_id,
                        polys_[i].share_for(node_id));
  }
  std::sort(shares.begin(), shares.end(),
            [](const auto& a, const auto& b) {
              return a.poly_id() < b.poly_id();
            });
  return shares;
}

std::uint64_t PolynomialPool::truth(std::uint32_t poly_id, std::uint64_t a,
                                    std::uint64_t b) const {
  if (poly_id >= polys_.size())
    throw std::out_of_range("PolynomialPool::truth: bad id");
  return polys_[poly_id].evaluate(a, b);
}

std::optional<std::uint32_t> shared_polynomial(
    const std::vector<PolynomialShare>& a,
    const std::vector<PolynomialShare>& b) {
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].poly_id() == b[j].poly_id()) return a[i].poly_id();
    if (a[i].poly_id() < b[j].poly_id())
      ++i;
    else
      ++j;
  }
  return std::nullopt;
}

}  // namespace sld::crypto
