#include "crypto/siphash.hpp"

#include <cstring>

namespace sld::crypto {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int b) {
  return (x << b) | (x >> (64 - b));
}

std::uint64_t load_le64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

struct SipState {
  std::uint64_t v0, v1, v2, v3;

  void round() {
    v0 += v1;
    v1 = rotl(v1, 13);
    v1 ^= v0;
    v0 = rotl(v0, 32);
    v2 += v3;
    v3 = rotl(v3, 16);
    v3 ^= v2;
    v0 += v3;
    v3 = rotl(v3, 21);
    v3 ^= v0;
    v2 += v1;
    v1 = rotl(v1, 17);
    v1 ^= v2;
    v2 = rotl(v2, 32);
  }
};

}  // namespace

std::uint64_t siphash24(const Key128& key,
                        std::span<const std::uint8_t> data) {
  const std::uint64_t k0 = load_le64(key.data());
  const std::uint64_t k1 = load_le64(key.data() + 8);

  SipState s{0x736f6d6570736575ULL ^ k0, 0x646f72616e646f6dULL ^ k1,
             0x6c7967656e657261ULL ^ k0, 0x7465646279746573ULL ^ k1};

  const std::size_t len = data.size();
  const std::size_t full_blocks = len / 8;
  const std::uint8_t* p = data.data();

  for (std::size_t i = 0; i < full_blocks; ++i, p += 8) {
    const std::uint64_t m = load_le64(p);
    s.v3 ^= m;
    s.round();
    s.round();
    s.v0 ^= m;
  }

  std::uint64_t last = static_cast<std::uint64_t>(len & 0xff) << 56;
  for (std::size_t i = 0; i < (len & 7); ++i)
    last |= static_cast<std::uint64_t>(p[i]) << (8 * i);

  s.v3 ^= last;
  s.round();
  s.round();
  s.v0 ^= last;

  s.v2 ^= 0xff;
  s.round();
  s.round();
  s.round();
  s.round();

  return s.v0 ^ s.v1 ^ s.v2 ^ s.v3;
}

std::uint64_t siphash24_u64(const Key128& key, std::uint64_t value) {
  std::uint8_t buf[8];
  for (int i = 0; i < 8; ++i)
    buf[i] = static_cast<std::uint8_t>(value >> (8 * i));
  return siphash24(key, std::span<const std::uint8_t>(buf, 8));
}

Key128 derive_key(const Key128& master, std::uint64_t label) {
  const std::uint64_t lo = siphash24_u64(master, label * 2);
  const std::uint64_t hi = siphash24_u64(master, label * 2 + 1);
  Key128 out{};
  for (int i = 0; i < 8; ++i) {
    out[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(lo >> (8 * i));
    out[static_cast<std::size_t>(i + 8)] =
        static_cast<std::uint8_t>(hi >> (8 * i));
  }
  return out;
}

}  // namespace sld::crypto
