#include "crypto/key_pool.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/stats.hpp"

namespace sld::crypto {

KeyPool::KeyPool(std::size_t pool_size, util::Rng& rng) {
  if (pool_size == 0) throw std::invalid_argument("KeyPool: empty pool");
  keys_.resize(pool_size);
  for (auto& k : keys_) {
    for (std::size_t i = 0; i < k.size(); i += 8) {
      const std::uint64_t word = rng();
      for (std::size_t b = 0; b < 8; ++b)
        k[i + b] = static_cast<std::uint8_t>(word >> (8 * b));
    }
  }
}

const Key128& KeyPool::key(PoolKeyId id) const {
  if (id >= keys_.size()) throw std::out_of_range("KeyPool::key: bad id");
  return keys_[id];
}

std::vector<PoolKeyId> KeyPool::draw_ring(std::size_t ring_size,
                                          util::Rng& rng) const {
  if (ring_size > keys_.size())
    throw std::invalid_argument("KeyPool::draw_ring: ring larger than pool");
  const auto idx = rng.sample_indices(keys_.size(), ring_size);
  std::vector<PoolKeyId> ids;
  ids.reserve(ring_size);
  for (const auto i : idx) ids.push_back(static_cast<PoolKeyId>(i));
  std::sort(ids.begin(), ids.end());
  return ids;
}

double KeyPool::share_probability(std::size_t pool_size,
                                  std::size_t ring_size) {
  if (ring_size == 0) return 0.0;
  if (2 * ring_size > pool_size) return 1.0;
  // P[share >= 1] = 1 - C(P-k, k) / C(P, k), in log space.
  const double log_miss =
      util::log_binomial_coefficient(pool_size - ring_size, ring_size) -
      util::log_binomial_coefficient(pool_size, ring_size);
  return 1.0 - std::exp(log_miss);
}

KeyRing::KeyRing(std::vector<PoolKeyId> ids, const KeyPool& pool)
    : ids_(std::move(ids)) {
  if (!std::is_sorted(ids_.begin(), ids_.end()))
    std::sort(ids_.begin(), ids_.end());
  key_material_.reserve(ids_.size());
  for (const auto id : ids_) key_material_.push_back(pool.key(id));
}

std::optional<PoolKeyId> KeyRing::shared_key_id(const KeyRing& other) const {
  auto a = ids_.begin();
  auto b = other.ids_.begin();
  while (a != ids_.end() && b != other.ids_.end()) {
    if (*a == *b) return *a;
    if (*a < *b)
      ++a;
    else
      ++b;
  }
  return std::nullopt;
}

Key128 KeyRing::link_key(PoolKeyId id, std::uint32_t node_a,
                         std::uint32_t node_b) const {
  const auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
  if (it == ids_.end() || *it != id)
    throw std::invalid_argument("KeyRing::link_key: key not in ring");
  const auto& material =
      key_material_[static_cast<std::size_t>(it - ids_.begin())];
  const std::uint32_t lo = std::min(node_a, node_b);
  const std::uint32_t hi = std::max(node_a, node_b);
  return derive_key(material,
                    (static_cast<std::uint64_t>(lo) << 32) | hi);
}

}  // namespace sld::crypto
