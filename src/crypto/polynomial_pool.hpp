// Polynomial-pool key predistribution (Liu & Ning, CCS'03 — reference [17]
// of the paper, by the same authors). A t-degree symmetric bivariate
// polynomial f(x, y) over GF(p) gives node u the univariate share
// g_u(y) = f(u, y); nodes u and v derive the same pairwise key because
// g_u(v) = f(u, v) = f(v, u) = g_v(u). Any coalition of at most t
// compromised nodes learns nothing about other pairs' keys. The pool
// variant predistributes shares of s polynomials drawn from a pool of F,
// trading memory for resilience exactly like EG key rings.
//
// Arithmetic is over GF(2^61 - 1) (a Mersenne prime, so reduction is two
// adds), and the 61-bit shared secret is expanded to a Key128 with the
// SipHash-based KDF.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "crypto/siphash.hpp"
#include "util/rng.hpp"

namespace sld::crypto {

/// GF(p) with p = 2^61 - 1.
namespace gf {
inline constexpr std::uint64_t kPrime = (1ULL << 61) - 1;

std::uint64_t add(std::uint64_t a, std::uint64_t b);
std::uint64_t mul(std::uint64_t a, std::uint64_t b);
}  // namespace gf

/// A t-degree symmetric bivariate polynomial over GF(2^61 - 1).
class SymmetricBivariatePolynomial {
 public:
  /// Random symmetric polynomial of degree `t` in each variable.
  SymmetricBivariatePolynomial(std::size_t t, util::Rng& rng);

  std::size_t degree() const { return degree_; }

  /// f(x, y).
  std::uint64_t evaluate(std::uint64_t x, std::uint64_t y) const;

  /// Coefficients of the univariate share g_u(y) = f(u, y), low degree
  /// first — what gets loaded onto node u.
  std::vector<std::uint64_t> share_for(std::uint64_t node_id) const;

 private:
  std::uint64_t coefficient(std::size_t i, std::size_t j) const;

  std::size_t degree_;
  // Upper triangle (i <= j) of the symmetric coefficient matrix.
  std::vector<std::uint64_t> upper_;
};

/// A node's share of one polynomial.
class PolynomialShare {
 public:
  PolynomialShare(std::uint32_t poly_id, std::uint64_t node_id,
                  std::vector<std::uint64_t> coefficients);

  std::uint32_t poly_id() const { return poly_id_; }
  std::uint64_t node_id() const { return node_id_; }

  /// g_u(peer): the 61-bit shared secret with `peer`.
  std::uint64_t evaluate(std::uint64_t peer) const;

  /// The 128-bit pairwise key with `peer` (KDF over the shared secret,
  /// bound to the polynomial id and the unordered node pair).
  Key128 pairwise_key(std::uint64_t peer) const;

 private:
  std::uint32_t poly_id_;
  std::uint64_t node_id_;
  std::vector<std::uint64_t> coefficients_;  // low degree first
};

/// The deployment authority's pool of F polynomials.
class PolynomialPool {
 public:
  PolynomialPool(std::size_t pool_size, std::size_t degree, util::Rng& rng);

  std::size_t size() const { return polys_.size(); }
  std::size_t degree() const { return degree_; }

  /// Draws `count` distinct polynomial shares for a node.
  std::vector<PolynomialShare> provision(std::uint64_t node_id,
                                         std::size_t count,
                                         util::Rng& rng) const;

  /// Ground-truth key for tests: f_poly(a, b).
  std::uint64_t truth(std::uint32_t poly_id, std::uint64_t a,
                      std::uint64_t b) const;

 private:
  std::size_t degree_;
  std::vector<SymmetricBivariatePolynomial> polys_;
};

/// Lowest-id polynomial two provisioned nodes share, if any.
std::optional<std::uint32_t> shared_polynomial(
    const std::vector<PolynomialShare>& a,
    const std::vector<PolynomialShare>& b);

}  // namespace sld::crypto
