#include "crypto/tesla.hpp"

#include <stdexcept>
#include <utility>

#include "crypto/mac.hpp"
#include "obs/profiler.hpp"

namespace sld::crypto {

Key128 tesla_one_way(const Key128& key) {
  SLD_PROF_SCOPE("crypto.tesla_one_way");
  // Domain-separated PRF of a fixed message under the input key: inverting
  // it requires inverting SipHash with an unknown key.
  static constexpr Key128 kDomain{0x75, 0x54, 0x45, 0x53, 0x4c, 0x41,
                                  0x2d, 0x4f, 0x57, 0x46, 0x00, 0x00,
                                  0x00, 0x00, 0x00, 0x01};
  const std::uint64_t lo =
      siphash24(kDomain, std::span<const std::uint8_t>(key.data(), 16));
  Key128 shifted = key;
  shifted[15] ^= 0x5a;
  const std::uint64_t hi =
      siphash24(kDomain, std::span<const std::uint8_t>(shifted.data(), 16));
  Key128 out{};
  for (int i = 0; i < 8; ++i) {
    out[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(lo >> (8 * i));
    out[static_cast<std::size_t>(i + 8)] =
        static_cast<std::uint8_t>(hi >> (8 * i));
  }
  return out;
}

TeslaKeyChain::TeslaKeyChain(Key128 seed, std::size_t length) {
  if (length == 0) throw std::invalid_argument("TeslaKeyChain: empty chain");
  keys_.resize(length + 1);
  keys_[length] = seed;
  for (std::size_t i = length; i > 0; --i)
    keys_[i - 1] = tesla_one_way(keys_[i]);
}

const Key128& TeslaKeyChain::key(std::size_t interval) const {
  if (interval == 0 || interval >= keys_.size())
    throw std::out_of_range("TeslaKeyChain::key: interval outside the chain");
  return keys_[interval];
}

bool TeslaKeyChain::verify_disclosed(const Key128& disclosed,
                                     std::size_t interval,
                                     const Key128& last_known_key,
                                     std::size_t last_known_interval) {
  if (interval <= last_known_interval) return false;
  Key128 walker = disclosed;
  for (std::size_t i = interval; i > last_known_interval; --i)
    walker = tesla_one_way(walker);
  return walker == last_known_key;
}

TeslaBroadcaster::TeslaBroadcaster(TeslaConfig config, Key128 chain_seed)
    : config_(config), chain_(chain_seed, config.chain_length) {
  if (config_.interval <= 0)
    throw std::invalid_argument("TeslaBroadcaster: non-positive interval");
  if (config_.disclosure_lag == 0)
    throw std::invalid_argument(
        "TeslaBroadcaster: disclosure lag must be >= 1");
}

std::size_t TeslaBroadcaster::interval_at(sim::SimTime now) const {
  if (now < 0) throw std::invalid_argument("interval_at: negative time");
  const auto idx =
      static_cast<std::size_t>(now / config_.interval) + 1;  // 1-based
  if (idx > chain_.length())
    throw std::runtime_error("TeslaBroadcaster: key chain exhausted");
  return idx;
}

TeslaPacket TeslaBroadcaster::authenticate(util::Bytes payload,
                                           sim::SimTime now) const {
  TeslaPacket packet;
  packet.interval = interval_at(now);
  packet.payload = std::move(payload);
  packet.mac = compute_mac(chain_.key(packet.interval),
                           /*src=*/0, /*dst=*/0xffffffffu, packet.payload);
  return packet;
}

std::optional<TeslaDisclosure> TeslaBroadcaster::disclosure_at(
    sim::SimTime now) const {
  const std::size_t current = interval_at(now);
  if (current <= config_.disclosure_lag) return std::nullopt;
  TeslaDisclosure d;
  d.interval = current - config_.disclosure_lag;
  d.key = chain_.key(d.interval);
  return d;
}

TeslaReceiver::TeslaReceiver(TeslaConfig config, Key128 commitment)
    : config_(config), last_key_(commitment) {}

bool TeslaReceiver::on_packet(const TeslaPacket& packet,
                              sim::SimTime rx_time) {
  // Security condition: at arrival, even a sender clock ahead of ours by
  // max_clock_skew must still be inside an interval whose key is not yet
  // disclosed. Otherwise an attacker holding the disclosed key could have
  // forged the packet.
  const auto latest_sender_interval = static_cast<std::size_t>(
      (rx_time + config_.max_clock_skew) / config_.interval) + 1;
  if (latest_sender_interval >= packet.interval + config_.disclosure_lag) {
    ++stats_.rejected_unsafe;
    return false;
  }
  if (packet.interval <= last_interval_) {
    // Key already known: either verify immediately... (not expected under
    // the security condition; treat as unsafe).
    ++stats_.rejected_unsafe;
    return false;
  }
  buffer_[packet.interval].push_back(packet);
  ++stats_.accepted_buffered;
  return true;
}

bool TeslaReceiver::on_disclosure(const TeslaDisclosure& disclosure) {
  if (disclosure.interval <= last_interval_) return true;  // stale, harmless
  if (!TeslaKeyChain::verify_disclosed(disclosure.key, disclosure.interval,
                                       last_key_, last_interval_)) {
    ++stats_.rejected_bad_key;
    return false;
  }

  // Verify and release every buffered packet whose interval key is now
  // derivable (any interval <= the disclosed one).
  Key128 interval_key = disclosure.key;
  for (std::size_t i = disclosure.interval; i > last_interval_; --i) {
    const auto it = buffer_.find(i);
    if (it != buffer_.end()) {
      for (const auto& packet : it->second) {
        if (verify_mac(interval_key, 0, 0xffffffffu, packet.payload,
                       packet.mac)) {
          released_.push_back(packet.payload);
          ++stats_.authenticated;
        } else {
          ++stats_.rejected_bad_mac;
        }
      }
      buffer_.erase(it);
    }
    interval_key = tesla_one_way(interval_key);
  }

  last_key_ = disclosure.key;
  last_interval_ = disclosure.interval;
  return true;
}

std::vector<util::Bytes> TeslaReceiver::take_authenticated() {
  return std::exchange(released_, {});
}

}  // namespace sld::crypto
