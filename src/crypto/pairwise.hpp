// Pairwise key management. The paper assumes "two communicating nodes share
// a unique pairwise key" and "each beacon node shares a unique random key
// with the base station". This manager models the *deployed* outcome of a
// key-establishment protocol: every (ordered-normalized) node pair and every
// node<->base-station pair gets a unique key derived from a master secret
// held by the deployment authority. Compromising a node (extracting its
// keys) hands the attacker exactly that node's keys and nothing else.
#pragma once

#include <cstdint>

#include "crypto/siphash.hpp"

namespace sld::crypto {

/// Reserved address of the base station.
inline constexpr std::uint32_t kBaseStationId = 0xffffffffu;

/// Derives pairwise and base-station keys from a master secret.
class PairwiseKeyManager {
 public:
  explicit PairwiseKeyManager(Key128 master) : master_(master) {}

  /// Deterministic from a 64-bit seed (test convenience).
  static PairwiseKeyManager from_seed(std::uint64_t seed);

  /// Unique key for the unordered pair {a, b}. a != b required.
  Key128 pairwise_key(std::uint32_t a, std::uint32_t b) const;

  /// Unique key shared between node `id` and the base station.
  Key128 base_station_key(std::uint32_t id) const;

 private:
  Key128 master_;
};

}  // namespace sld::crypto
