#include "crypto/pairwise.hpp"

#include <algorithm>
#include <stdexcept>

namespace sld::crypto {

PairwiseKeyManager PairwiseKeyManager::from_seed(std::uint64_t seed) {
  Key128 master{};
  for (int i = 0; i < 8; ++i) {
    master[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(seed >> (8 * i));
    master[static_cast<std::size_t>(i + 8)] =
        static_cast<std::uint8_t>((seed * 0x9e3779b97f4a7c15ULL) >> (8 * i));
  }
  return PairwiseKeyManager(master);
}

Key128 PairwiseKeyManager::pairwise_key(std::uint32_t a,
                                        std::uint32_t b) const {
  if (a == b)
    throw std::invalid_argument("pairwise_key: a node has no pair with itself");
  const std::uint32_t lo = std::min(a, b);
  const std::uint32_t hi = std::max(a, b);
  return derive_key(master_, (static_cast<std::uint64_t>(lo) << 32) | hi);
}

Key128 PairwiseKeyManager::base_station_key(std::uint32_t id) const {
  if (id == kBaseStationId)
    throw std::invalid_argument("base_station_key: id is the base station");
  return derive_key(master_,
                    0xb5e0000000000000ULL | static_cast<std::uint64_t>(id));
}

}  // namespace sld::crypto
