// Message authentication for beacon traffic. Every unicast packet carries a
// 64-bit SipHash tag under the pairwise key of the two endpoints; packets
// forged by external attackers without the right key fail verification and
// are dropped, exactly as the paper assumes ("beacon packets forged by
// external attackers ... can be easily filtered out").
#pragma once

#include <cstdint>
#include <span>

#include "crypto/siphash.hpp"

namespace sld::crypto {

/// 64-bit authentication tag.
using MacTag = std::uint64_t;

/// Computes the tag of `payload` bound to (src, dst) under `key`. Binding
/// the addresses prevents an attacker from splicing a valid payload onto a
/// different sender/receiver pair.
MacTag compute_mac(const Key128& key, std::uint32_t src, std::uint32_t dst,
                   std::span<const std::uint8_t> payload);

/// Constant-shape verification (the simulator has no timing side channel,
/// but the API mirrors real practice).
bool verify_mac(const Key128& key, std::uint32_t src, std::uint32_t dst,
                std::span<const std::uint8_t> payload, MacTag tag);

}  // namespace sld::crypto
