// Payload encryption. The paper requires every beacon packet to be
// "authenticated (and potentially encrypted) with the pairwise key shared
// between two communicating nodes"; this provides the encryption half as a
// SipHash-based stream cipher (counter-mode keystream under a derived
// subkey, so the same key can safely both encrypt and MAC). A (key, nonce)
// pair must never be reused — the protocol layer uses the per-request
// nonce it already carries.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "crypto/mac.hpp"
#include "crypto/siphash.hpp"
#include "util/bytes.hpp"

namespace sld::crypto {

/// Encrypts `plaintext` in place-copy under (key, nonce). Symmetric:
/// applying it twice with the same parameters decrypts.
util::Bytes stream_crypt(const Key128& key, std::uint64_t nonce,
                         std::span<const std::uint8_t> data);

/// Authenticated encryption convenience: encrypt-then-MAC with subkeys
/// derived from `key` (so key reuse across the two roles is safe).
struct SealedBox {
  util::Bytes ciphertext;
  MacTag tag = 0;
};

SealedBox seal(const Key128& key, std::uint64_t nonce, std::uint32_t src,
               std::uint32_t dst, std::span<const std::uint8_t> plaintext);

/// Verifies and decrypts; nullopt when the tag does not verify.
std::optional<util::Bytes> open(const Key128& key, std::uint64_t nonce,
                                std::uint32_t src, std::uint32_t dst,
                                const SealedBox& box);

}  // namespace sld::crypto
