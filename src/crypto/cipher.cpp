#include "crypto/cipher.hpp"

#include "crypto/mac.hpp"

namespace sld::crypto {

namespace {
constexpr std::uint64_t kEncryptLabel = 0x656e63'00000000ULL;  // "enc"
constexpr std::uint64_t kMacLabel = 0x6d6163'00000000ULL;      // "mac"
}  // namespace

util::Bytes stream_crypt(const Key128& key, std::uint64_t nonce,
                         std::span<const std::uint8_t> data) {
  util::Bytes out(data.begin(), data.end());
  std::uint64_t block = 0;
  std::size_t offset = 0;
  while (offset < out.size()) {
    // Keystream block i = PRF(key, nonce || i).
    const std::uint64_t ks =
        siphash24_u64(key, nonce ^ (block * 0x9e3779b97f4a7c15ULL + block));
    for (int b = 0; b < 8 && offset < out.size(); ++b, ++offset)
      out[offset] ^= static_cast<std::uint8_t>(ks >> (8 * b));
    ++block;
  }
  return out;
}

SealedBox seal(const Key128& key, std::uint64_t nonce, std::uint32_t src,
               std::uint32_t dst, std::span<const std::uint8_t> plaintext) {
  const Key128 enc_key = derive_key(key, kEncryptLabel ^ nonce);
  const Key128 mac_key = derive_key(key, kMacLabel);
  SealedBox box;
  box.ciphertext = stream_crypt(enc_key, nonce, plaintext);
  util::ByteWriter ad;
  ad.u64(nonce);
  ad.bytes(box.ciphertext);
  box.tag = compute_mac(mac_key, src, dst, ad.data());
  return box;
}

std::optional<util::Bytes> open(const Key128& key, std::uint64_t nonce,
                                std::uint32_t src, std::uint32_t dst,
                                const SealedBox& box) {
  const Key128 mac_key = derive_key(key, kMacLabel);
  util::ByteWriter ad;
  ad.u64(nonce);
  ad.bytes(box.ciphertext);
  if (!verify_mac(mac_key, src, dst, ad.data(), box.tag)) return std::nullopt;
  const Key128 enc_key = derive_key(key, kEncryptLabel ^ nonce);
  return stream_crypt(enc_key, nonce, box.ciphertext);
}

}  // namespace sld::crypto
