// Routing topology: the split the paper's motivation rests on. Radio links
// exist between nodes whose *true* positions are within range (physics),
// but geographic forwarding decides next hops from the positions nodes
// *believe* (their localization output). Corrupted localization therefore
// breaks routing even though the physical links are fine — which is why
// GPSR-style protocols need secure location discovery.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "sim/message.hpp"
#include "util/geometry.hpp"

namespace sld::routing {

class Topology {
 public:
  explicit Topology(double comm_range_ft);

  /// Adds a node with its physical position; the believed position
  /// defaults to the truth until overridden.
  void add_node(sim::NodeId id, const util::Vec2& true_position);

  /// Overrides what `id` believes its own position to be (e.g. the output
  /// of multilateration under attack).
  void set_believed_position(sim::NodeId id, const util::Vec2& believed);

  double comm_range() const { return range_; }
  std::size_t node_count() const { return true_pos_.size(); }
  bool contains(sim::NodeId id) const { return true_pos_.contains(id); }

  const util::Vec2& true_position(sim::NodeId id) const;
  const util::Vec2& believed_position(sim::NodeId id) const;

  /// Physical neighbours of `id` (link = true distance <= range).
  const std::vector<sim::NodeId>& neighbors(sim::NodeId id) const;

  /// Finalizes the neighbour index; call after all add_node calls.
  /// (Re-callable; believed positions do not affect links.)
  void build_links();

  const std::vector<sim::NodeId>& node_ids() const { return ids_; }

 private:
  double range_;
  std::vector<sim::NodeId> ids_;
  std::unordered_map<sim::NodeId, util::Vec2> true_pos_;
  std::unordered_map<sim::NodeId, util::Vec2> believed_pos_;
  std::unordered_map<sim::NodeId, std::vector<sim::NodeId>> links_;
  bool built_ = false;
};

}  // namespace sld::routing
