#include "routing/gpsr.hpp"

#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace sld::routing {

GpsrRouter::GpsrRouter(const Topology* topology, GpsrConfig config)
    : topo_(topology), config_(config) {
  if (topo_ == nullptr) throw std::invalid_argument("GpsrRouter: null topology");
  if (config_.max_hops == 0)
    throw std::invalid_argument("GpsrRouter: zero hop limit");
}

std::optional<sim::NodeId> GpsrRouter::greedy_next(sim::NodeId at,
                                                   sim::NodeId dst) const {
  const auto& dst_pos = topo_->believed_position(dst);
  const double here =
      util::distance_squared(topo_->believed_position(at), dst_pos);
  std::optional<sim::NodeId> best;
  double best_d = here;
  for (const auto n : topo_->neighbors(at)) {
    const double d =
        util::distance_squared(topo_->believed_position(n), dst_pos);
    if (d < best_d) {
      best_d = d;
      best = n;
    }
  }
  return best;
}

std::vector<sim::NodeId> GpsrRouter::gabriel_neighbors(
    sim::NodeId node) const {
  // Gabriel condition on believed positions: keep edge (u, v) iff no
  // common radio neighbour w lies inside the circle with diameter uv,
  // i.e. |uw|^2 + |vw|^2 > |uv|^2 for all witnesses w.
  const auto& u = topo_->believed_position(node);
  std::vector<sim::NodeId> kept;
  for (const auto vid : topo_->neighbors(node)) {
    const auto& v = topo_->believed_position(vid);
    const double uv2 = util::distance_squared(u, v);
    bool witnessed = false;
    for (const auto wid : topo_->neighbors(node)) {
      if (wid == vid) continue;
      const auto& w = topo_->believed_position(wid);
      if (util::distance_squared(u, w) + util::distance_squared(v, w) <=
          uv2) {
        witnessed = true;
        break;
      }
    }
    if (!witnessed) kept.push_back(vid);
  }
  return kept;
}

namespace {
/// Counter-clockwise angle of b as seen from a, in [0, 2pi).
double bearing(const util::Vec2& a, const util::Vec2& b) {
  const double angle = std::atan2(b.y - a.y, b.x - a.x);
  return angle < 0.0 ? angle + 2.0 * M_PI : angle;
}
}  // namespace

std::optional<sim::NodeId> GpsrRouter::perimeter_next(sim::NodeId at,
                                                      sim::NodeId prev,
                                                      sim::NodeId dst) const {
  (void)dst;
  const auto candidates = gabriel_neighbors(at);
  if (candidates.empty()) return std::nullopt;

  const auto& here = topo_->believed_position(at);
  const double reference =
      bearing(here, topo_->believed_position(prev));

  // Right-hand rule: first edge counter-clockwise from the edge we
  // arrived on.
  std::optional<sim::NodeId> best;
  double best_delta = 2.0 * M_PI + 1.0;
  for (const auto c : candidates) {
    if (c == prev && candidates.size() > 1) continue;  // last resort only
    double delta = bearing(here, topo_->believed_position(c)) - reference;
    while (delta <= 1e-12) delta += 2.0 * M_PI;
    if (delta < best_delta) {
      best_delta = delta;
      best = c;
    }
  }
  if (!best && !candidates.empty()) best = candidates.front();
  return best;
}

RouteResult GpsrRouter::route(sim::NodeId src, sim::NodeId dst) const {
  if (!topo_->contains(src) || !topo_->contains(dst))
    throw std::invalid_argument("GpsrRouter::route: unknown endpoint");

  RouteResult result;
  result.path.push_back(src);
  if (src == dst) {
    result.status = RouteStatus::kDelivered;
    return result;
  }

  sim::NodeId at = src;
  bool perimeter_mode = false;
  sim::NodeId perimeter_prev = src;
  double perimeter_entry_distance = 0.0;
  // (node, mode) pairs visited; revisiting one means a believed-position
  // loop that will never terminate.
  std::unordered_set<std::uint64_t> visited;

  const auto& dst_believed = topo_->believed_position(dst);
  while (result.path.size() <= config_.max_hops) {
    const std::uint64_t state_key =
        (static_cast<std::uint64_t>(at) << 1) | (perimeter_mode ? 1u : 0u);
    if (!visited.insert(state_key).second) {
      result.status = RouteStatus::kHopLimit;
      return result;
    }

    std::optional<sim::NodeId> next;
    if (!perimeter_mode) {
      next = greedy_next(at, dst);
      if (next) {
        ++result.greedy_hops;
      } else {
        // Local minimum: enter perimeter mode.
        perimeter_mode = true;
        perimeter_entry_distance =
            util::distance(topo_->believed_position(at), dst_believed);
        perimeter_prev = at;
        next = perimeter_next(at, at, dst);
        if (next) ++result.perimeter_hops;
      }
    } else {
      // Return to greedy once we are closer than where greedy failed.
      if (util::distance(topo_->believed_position(at), dst_believed) <
          perimeter_entry_distance) {
        perimeter_mode = false;
        continue;  // re-evaluate greedily from the same node
      }
      next = perimeter_next(at, perimeter_prev, dst);
      if (next) ++result.perimeter_hops;
    }

    if (!next) {
      result.status = RouteStatus::kStuck;
      return result;
    }

    perimeter_prev = at;
    at = *next;
    result.path.push_back(at);
    if (at == dst) {
      result.status = RouteStatus::kDelivered;
      return result;
    }
  }
  result.status = RouteStatus::kHopLimit;
  return result;
}

}  // namespace sld::routing
