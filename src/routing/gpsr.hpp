// GPSR-style geographic routing (Karp & Kung, MobiCom'00 — the paper's §1
// example of a fundamental technique that "make[s] routing decisions at
// least partially based on their own and their neighbors' locations").
//
// Greedy mode forwards to the neighbour whose *believed* position is
// closest to the destination's believed position, as long as that makes
// progress. At a local minimum (a void), the router switches to perimeter
// mode: a right-hand-rule walk over the Gabriel-graph planarization of the
// believed positions, returning to greedy once a node closer to the
// destination than the point where greedy failed is reached. (The
// full-GPSR face-crossing refinement is omitted; the right-hand walk with
// the distance-based recovery rule is the standard teaching simplification
// and recovers the same voids on these topologies.)
#pragma once

#include <cstdint>
#include <vector>

#include "routing/topology.hpp"

namespace sld::routing {

enum class RouteStatus {
  kDelivered,
  kStuck,      // greedy failed and perimeter walk found no way out
  kHopLimit,   // exceeded max hops (usually a believed-position loop)
};

struct RouteResult {
  RouteStatus status = RouteStatus::kStuck;
  std::vector<sim::NodeId> path;  // includes source; includes dest iff delivered
  std::size_t greedy_hops = 0;
  std::size_t perimeter_hops = 0;

  bool delivered() const { return status == RouteStatus::kDelivered; }
};

struct GpsrConfig {
  std::size_t max_hops = 256;
};

class GpsrRouter {
 public:
  /// Borrows `topology`; it must outlive the router and have built links.
  explicit GpsrRouter(const Topology* topology, GpsrConfig config = {});

  /// Routes a packet from `src` to `dst`. Delivery means physically
  /// reaching `dst` (ids, not positions).
  RouteResult route(sim::NodeId src, sim::NodeId dst) const;

  /// Gabriel-graph neighbours of `node` under believed positions: the
  /// planar subgraph perimeter mode walks.
  std::vector<sim::NodeId> gabriel_neighbors(sim::NodeId node) const;

 private:
  /// Greedy next hop, or nullopt at a local minimum.
  std::optional<sim::NodeId> greedy_next(sim::NodeId at, sim::NodeId dst) const;

  /// Right-hand-rule successor after arriving at `at` from `prev`.
  std::optional<sim::NodeId> perimeter_next(sim::NodeId at, sim::NodeId prev,
                                            sim::NodeId dst) const;

  const Topology* topo_;
  GpsrConfig config_;
};

}  // namespace sld::routing
