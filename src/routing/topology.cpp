#include "routing/topology.hpp"

#include <stdexcept>

namespace sld::routing {

Topology::Topology(double comm_range_ft) : range_(comm_range_ft) {
  if (range_ <= 0.0)
    throw std::invalid_argument("Topology: non-positive range");
}

void Topology::add_node(sim::NodeId id, const util::Vec2& true_position) {
  if (!true_pos_.emplace(id, true_position).second)
    throw std::invalid_argument("Topology::add_node: duplicate id");
  believed_pos_.emplace(id, true_position);
  ids_.push_back(id);
  built_ = false;
}

void Topology::set_believed_position(sim::NodeId id,
                                     const util::Vec2& believed) {
  const auto it = believed_pos_.find(id);
  if (it == believed_pos_.end())
    throw std::invalid_argument("Topology::set_believed_position: unknown id");
  it->second = believed;
}

const util::Vec2& Topology::true_position(sim::NodeId id) const {
  const auto it = true_pos_.find(id);
  if (it == true_pos_.end())
    throw std::invalid_argument("Topology::true_position: unknown id");
  return it->second;
}

const util::Vec2& Topology::believed_position(sim::NodeId id) const {
  const auto it = believed_pos_.find(id);
  if (it == believed_pos_.end())
    throw std::invalid_argument("Topology::believed_position: unknown id");
  return it->second;
}

void Topology::build_links() {
  links_.clear();
  const double r2 = range_ * range_;
  for (const auto a : ids_) links_[a] = {};
  for (std::size_t i = 0; i < ids_.size(); ++i) {
    for (std::size_t j = i + 1; j < ids_.size(); ++j) {
      const auto a = ids_[i];
      const auto b = ids_[j];
      if (util::distance_squared(true_pos_.at(a), true_pos_.at(b)) <= r2) {
        links_[a].push_back(b);
        links_[b].push_back(a);
      }
    }
  }
  built_ = true;
}

const std::vector<sim::NodeId>& Topology::neighbors(sim::NodeId id) const {
  if (!built_) throw std::logic_error("Topology: build_links() not called");
  const auto it = links_.find(id);
  if (it == links_.end())
    throw std::invalid_argument("Topology::neighbors: unknown id");
  return it->second;
}

}  // namespace sld::routing
