// Attack-resistant multilateration (extension beyond the paper, used by the
// ablation benches): greedily discards the reference with the largest
// absolute residual while the RMS residual exceeds a threshold tied to the
// honest ranging error. This approximates the "consistency-based" robust
// estimators that followed this paper (e.g. attack-resistant MMSE), and
// quantifies how much beacon revocation still helps an estimator that
// already defends itself.
#pragma once

#include <optional>

#include "localization/location_reference.hpp"
#include "localization/multilateration.hpp"

namespace sld::localization {

struct RobustOptions {
  /// Accept the fit once the RMS residual drops below this (feet). A good
  /// default is the honest maximum ranging error.
  double acceptable_rms_ft = 4.0;
  /// Never drop below this many references.
  std::size_t min_references = 3;
  MultilaterationOptions solver;
};

struct RobustResult {
  LocalizationResult fit;
  /// Indices (into the original reference vector) that were discarded.
  std::vector<std::size_t> discarded;
};

/// Robust fit; nullopt if even the final reduced set cannot be solved.
std::optional<RobustResult> robust_multilateration(
    const LocationReferences& references, const RobustOptions& options = {});

}  // namespace sld::localization
