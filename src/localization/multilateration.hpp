// Minimum-mean-square-error multilateration — the canonical stage-2
// estimator the paper protects: "consider the location references as
// constraints ... and estimate it by finding a mathematical solution that
// satisfy these constraints with minimum estimation error".
//
// The solver linearises the circle equations for an initial guess, then
// refines with Gauss-Newton iterations under Levenberg damping. At least
// three non-collinear references are required for a unique planar fix.
#pragma once

#include <optional>

#include "localization/location_reference.hpp"
#include "util/geometry.hpp"

namespace sld::localization {

struct MultilaterationOptions {
  std::size_t max_iterations = 50;
  double convergence_ft = 1e-6;
  double initial_damping = 1e-3;
};

struct LocalizationResult {
  util::Vec2 position;
  /// Root-mean-square residual of |measured - distance(position, beacon)|.
  double rms_residual_ft = 0.0;
  std::size_t iterations = 0;
  /// Per-reference residuals (same order as the input references).
  std::vector<double> residuals_ft;
};

class MultilaterationSolver {
 public:
  explicit MultilaterationSolver(MultilaterationOptions options = {});

  /// Estimates a position from >= 3 references. Returns nullopt when the
  /// problem is under-constrained (fewer than 3 references, or a degenerate
  /// collinear geometry the normal equations cannot invert).
  std::optional<LocalizationResult> solve(
      const LocationReferences& references) const;

 private:
  std::optional<util::Vec2> linear_initial_guess(
      const LocationReferences& refs) const;

  MultilaterationOptions options_;
};

/// RMS residual of a candidate position against references.
double rms_residual(const util::Vec2& position,
                    const LocationReferences& references);

}  // namespace sld::localization
