// DV-Hop localization (Niculescu & Nath, cited by the paper as [23]):
// "use the minimum hop count and the average hop size to estimate the
// distance between nodes and then determine sensor nodes' locations".
//
// Stage 1: every beacon floods the network; each node learns its minimum
// hop count to every beacon. Stage 2: each beacon computes an average
// hop size from the known beacon-to-beacon distances and hop counts, and
// nodes convert hop counts into distance estimates. Stage 3: standard
// multilateration over those estimates.
//
// Because stage 3 consumes beacon-claimed positions, DV-Hop inherits the
// same vulnerability to compromised beacons that the paper's detector
// addresses — lying beacons poison every node within flooding reach.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "localization/multilateration.hpp"
#include "util/geometry.hpp"

namespace sld::localization {

using Adjacency =
    std::unordered_map<std::uint32_t, std::vector<std::uint32_t>>;

/// Minimum hop counts from `source` to every reachable node (BFS).
std::unordered_map<std::uint32_t, std::uint32_t> hop_counts_from(
    const Adjacency& graph, std::uint32_t source);

struct DvHopResult {
  util::Vec2 position;
  double avg_hop_size_ft = 0.0;
  std::size_t beacons_used = 0;
};

/// Localizes `node` with DV-Hop over `graph`, given the (claimed)
/// positions of the beacons. Returns nullopt when fewer than three beacons
/// are reachable or the geometry degenerates.
std::optional<DvHopResult> dv_hop_localize(
    const Adjacency& graph,
    const std::unordered_map<std::uint32_t, util::Vec2>& beacon_positions,
    std::uint32_t node);

}  // namespace sld::localization
