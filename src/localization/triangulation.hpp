// Bearing-based localization (triangulation), the estimator AoA-based
// schemes cited by the paper use ([Niculescu-Nath APS-AoA, Nasipuri-Li]).
// Each reference contributes the constraint "the beacon at B lies at
// bearing theta from me"; with two or more non-degenerate bearings the
// node's position is the least-squares intersection of the bearing lines.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/geometry.hpp"

namespace sld::localization {

/// One AoA reference: a beacon's (claimed) position and the bearing at
/// which its signal arrived at the node being localized.
struct BearingReference {
  std::uint32_t beacon_id = 0;
  util::Vec2 beacon_position;
  /// Bearing of the *beacon as seen from the unknown node*, radians.
  double bearing_rad = 0.0;
};

struct TriangulationResult {
  util::Vec2 position;
  /// RMS perpendicular distance from the estimate to the bearing lines.
  double rms_residual_ft = 0.0;
};

/// Least-squares intersection of the bearing lines; nullopt with fewer
/// than two references or (near-)parallel bearings.
std::optional<TriangulationResult> triangulate(
    const std::vector<BearingReference>& references);

}  // namespace sld::localization
