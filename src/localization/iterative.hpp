// Iterative (n-hop) multilateration, after Savvides et al. [27, 28] and
// the paper's §2.3 discussion: "a non-beacon node may become a beacon node
// to supply location references once it discovers its own location.
// Localization error may accumulate when more and more non-beacon nodes
// turn into beacon nodes." This module implements that promotion process
// so the accumulation can be measured (and so the detector's consistency
// constraints can still be applied against promoted beacons).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "localization/multilateration.hpp"
#include "util/geometry.hpp"
#include "util/rng.hpp"

namespace sld::localization {

struct IterativeConfig {
  /// Radio range bounding which beacons a node can hear, feet.
  double comm_range_ft = 150.0;
  /// Honest ranging error bound applied to every measurement, feet.
  double max_ranging_error_ft = 4.0;
  /// Maximum promotion rounds (round 1 uses only the seed beacons).
  std::size_t max_rounds = 10;
  /// Apply the §2.3 idea of keeping consistency constraints on promoted
  /// beacons: fit with residual-filtering multilateration, discarding
  /// references whose residual exceeds the error budget (which catches
  /// promoted beacons that lie about their discovered position).
  bool robust = false;
  MultilaterationOptions solver;
};

struct IterativeNodeResult {
  util::Vec2 estimate;
  /// Round in which this node localized (1 = from seed beacons only).
  std::size_t round = 0;
  /// References used for the fix.
  std::size_t references = 0;
};

struct IterativeResult {
  /// Per non-seed node id.
  std::unordered_map<std::uint32_t, IterativeNodeResult> localized;
  std::size_t rounds_run = 0;
};

/// Runs iterative multilateration: in each round, every not-yet-localized
/// node that hears >= 3 located nodes (seed beacons or promoted ones)
/// solves for its position, then serves as a reference in later rounds.
/// Distances are measured against *true* positions with bounded noise, but
/// references carry the *estimated* positions — the mechanism by which
/// error accumulates.
IterativeResult iterative_multilateration(
    const std::unordered_map<std::uint32_t, util::Vec2>& seed_beacons,
    const std::unordered_map<std::uint32_t, util::Vec2>& true_positions,
    const IterativeConfig& config, util::Rng& rng);

}  // namespace sld::localization
