#include "localization/range_free.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "ranging/aoa.hpp"

namespace sld::localization {

namespace {

/// Shared grid-sampling core: centroid of the points satisfying
/// `feasible` inside the bounding box of the disks.
template <typename Predicate>
std::optional<RangeFreeResult> sampled_centroid(
    const std::vector<util::Vec2>& centers, const RangeFreeConfig& config,
    Predicate feasible) {
  double x0 = centers[0].x - config.comm_range_ft;
  double x1 = centers[0].x + config.comm_range_ft;
  double y0 = centers[0].y - config.comm_range_ft;
  double y1 = centers[0].y + config.comm_range_ft;
  for (const auto& b : centers) {
    x0 = std::max(x0, b.x - config.comm_range_ft);
    x1 = std::min(x1, b.x + config.comm_range_ft);
    y0 = std::max(y0, b.y - config.comm_range_ft);
    y1 = std::min(y1, b.y + config.comm_range_ft);
  }
  if (x0 > x1 || y0 > y1) return std::nullopt;

  util::Vec2 sum;
  std::size_t inside = 0;
  for (double x = x0; x <= x1; x += config.grid_step_ft) {
    for (double y = y0; y <= y1; y += config.grid_step_ft) {
      const util::Vec2 p{x, y};
      if (!feasible(p)) continue;
      sum += p;
      ++inside;
    }
  }
  if (inside == 0) return std::nullopt;
  RangeFreeResult result;
  result.position = sum / static_cast<double>(inside);
  result.region_samples = inside;
  return result;
}

void validate(const RangeFreeConfig& config) {
  if (config.comm_range_ft <= 0.0)
    throw std::invalid_argument("range_free: bad range");
  if (config.grid_step_ft <= 0.0)
    throw std::invalid_argument("range_free: bad grid step");
}

}  // namespace

std::optional<RangeFreeResult> range_free_estimate(
    const std::vector<util::Vec2>& heard_beacon_positions,
    const RangeFreeConfig& config) {
  validate(config);
  if (heard_beacon_positions.empty()) return std::nullopt;
  const double r2 = config.comm_range_ft * config.comm_range_ft;
  return sampled_centroid(
      heard_beacon_positions, config, [&](const util::Vec2& p) {
        for (const auto& b : heard_beacon_positions) {
          if (util::distance_squared(p, b) > r2) return false;
        }
        return true;
      });
}

std::optional<RangeFreeResult> serloc_estimate(
    const std::vector<SectorReference>& sectors,
    const RangeFreeConfig& config) {
  validate(config);
  if (sectors.empty()) return std::nullopt;
  for (const auto& s : sectors) {
    if (s.sector_halfwidth_rad <= 0.0 || s.sector_halfwidth_rad > M_PI)
      throw std::invalid_argument("serloc_estimate: bad sector width");
  }
  std::vector<util::Vec2> centers;
  centers.reserve(sectors.size());
  for (const auto& s : sectors) centers.push_back(s.beacon_position);

  const double r2 = config.comm_range_ft * config.comm_range_ft;
  return sampled_centroid(centers, config, [&](const util::Vec2& p) {
    for (const auto& s : sectors) {
      if (util::distance_squared(p, s.beacon_position) > r2) return false;
      const double bearing = ranging::true_bearing(s.beacon_position, p);
      if (ranging::angular_distance(bearing, s.sector_bearing_rad) >
          s.sector_halfwidth_rad)
        return false;
    }
    return true;
  });
}

}  // namespace sld::localization
