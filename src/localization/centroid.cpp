#include "localization/centroid.hpp"

#include <stdexcept>

namespace sld::localization {

std::optional<util::Vec2> centroid_estimate(const LocationReferences& refs) {
  if (refs.empty()) return std::nullopt;
  util::Vec2 sum;
  for (const auto& r : refs) sum += r.beacon_position;
  return sum / static_cast<double>(refs.size());
}

std::optional<util::Vec2> weighted_centroid_estimate(
    const LocationReferences& refs, double epsilon_ft) {
  if (epsilon_ft <= 0.0)
    throw std::invalid_argument("weighted_centroid_estimate: bad epsilon");
  if (refs.empty()) return std::nullopt;
  util::Vec2 sum;
  double total = 0.0;
  for (const auto& r : refs) {
    const double w = 1.0 / (r.measured_distance_ft + epsilon_ft);
    sum += r.beacon_position * w;
    total += w;
  }
  return sum / total;
}

}  // namespace sld::localization
