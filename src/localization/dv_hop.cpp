#include "localization/dv_hop.hpp"

#include <deque>

namespace sld::localization {

std::unordered_map<std::uint32_t, std::uint32_t> hop_counts_from(
    const Adjacency& graph, std::uint32_t source) {
  std::unordered_map<std::uint32_t, std::uint32_t> hops;
  if (!graph.contains(source)) return hops;
  std::deque<std::uint32_t> frontier{source};
  hops[source] = 0;
  while (!frontier.empty()) {
    const auto u = frontier.front();
    frontier.pop_front();
    const auto it = graph.find(u);
    if (it == graph.end()) continue;
    for (const auto v : it->second) {
      if (hops.contains(v)) continue;
      hops[v] = hops[u] + 1;
      frontier.push_back(v);
    }
  }
  return hops;
}

std::optional<DvHopResult> dv_hop_localize(
    const Adjacency& graph,
    const std::unordered_map<std::uint32_t, util::Vec2>& beacon_positions,
    std::uint32_t node) {
  if (beacon_positions.size() < 3) return std::nullopt;

  // Stage 1: hop counts from every beacon.
  std::unordered_map<std::uint32_t,
                     std::unordered_map<std::uint32_t, std::uint32_t>>
      beacon_hops;
  for (const auto& [bid, pos] : beacon_positions) {
    (void)pos;
    beacon_hops[bid] = hop_counts_from(graph, bid);
  }

  // Stage 2: network-wide average hop size from beacon pair distances.
  double dist_sum = 0.0;
  double hop_sum = 0.0;
  for (const auto& [a, a_hops] : beacon_hops) {
    for (const auto& [b, b_pos] : beacon_positions) {
      if (b <= a) continue;
      const auto it = a_hops.find(b);
      if (it == a_hops.end() || it->second == 0) continue;
      dist_sum += util::distance(beacon_positions.at(a), b_pos);
      hop_sum += static_cast<double>(it->second);
    }
  }
  if (hop_sum <= 0.0) return std::nullopt;
  const double avg_hop_size = dist_sum / hop_sum;

  // Stage 3: hop counts to `node` become distance estimates.
  LocationReferences refs;
  for (const auto& [bid, hops] : beacon_hops) {
    const auto it = hops.find(node);
    if (it == hops.end()) continue;
    refs.push_back({bid, beacon_positions.at(bid),
                    avg_hop_size * static_cast<double>(it->second)});
  }
  MultilaterationSolver solver;
  const auto fit = solver.solve(refs);
  if (!fit) return std::nullopt;

  DvHopResult result;
  result.position = fit->position;
  result.avg_hop_size_ft = avg_hop_size;
  result.beacons_used = refs.size();
  return result;
}

}  // namespace sld::localization
