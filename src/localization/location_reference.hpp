// A location reference (paper §1): "such a measurement and the location of
// the corresponding beacon node collectively".
#pragma once

#include <cstdint>
#include <vector>

#include "util/geometry.hpp"

namespace sld::localization {

struct LocationReference {
  std::uint32_t beacon_id = 0;
  /// Beacon location as claimed in the beacon packet.
  util::Vec2 beacon_position;
  /// Distance measured from the beacon signal, in feet.
  double measured_distance_ft = 0.0;
};

using LocationReferences = std::vector<LocationReference>;

}  // namespace sld::localization
