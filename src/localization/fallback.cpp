#include "localization/fallback.hpp"

#include "localization/centroid.hpp"

namespace sld::localization {

const char* confidence_tier_name(ConfidenceTier tier) {
  switch (tier) {
    case ConfidenceTier::kMultilateration:
      return "mlat";
    case ConfidenceTier::kRobust:
      return "robust";
    case ConfidenceTier::kCentroid:
      return "centroid";
  }
  return "unknown";
}

std::optional<FallbackResult> localize_with_fallback(
    const LocationReferences& refs, const FallbackConfig& config) {
  if (refs.empty()) return std::nullopt;

  if (refs.size() >= config.min_references) {
    const MultilaterationSolver solver;
    if (const auto fit = solver.solve(refs);
        fit.has_value() && fit->rms_residual_ft <= config.acceptable_rms_ft) {
      FallbackResult r;
      r.position = fit->position;
      r.rms_residual_ft = fit->rms_residual_ft;
      r.tier = ConfidenceTier::kMultilateration;
      return r;
    }
    RobustOptions robust;
    robust.acceptable_rms_ft = config.acceptable_rms_ft;
    robust.min_references = config.min_references;
    if (const auto fit = robust_multilateration(refs, robust);
        fit.has_value()) {
      FallbackResult r;
      r.position = fit->fit.position;
      r.rms_residual_ft = fit->fit.rms_residual_ft;
      r.tier = ConfidenceTier::kRobust;
      r.discarded = fit->discarded.size();
      return r;
    }
  }

  // Range-free rung: always available with >= 1 reference; no residual
  // structure, so the tier is the caller's only quality signal.
  if (const auto centroid = weighted_centroid_estimate(refs);
      centroid.has_value()) {
    FallbackResult r;
    r.position = *centroid;
    r.tier = ConfidenceTier::kCentroid;
    return r;
  }
  return std::nullopt;
}

}  // namespace sld::localization
