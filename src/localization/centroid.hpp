// The coarse-grained centroid localizer of Bulusu, Heidemann & Estrin
// ("GPS-less low cost outdoor localization", 2000), cited by the paper as a
// representative scheme its detector protects: the node estimates its
// position as the centroid of the beacon locations it hears, ignoring the
// distance measurements entirely.
#pragma once

#include <optional>

#include "localization/location_reference.hpp"
#include "util/geometry.hpp"

namespace sld::localization {

/// Centroid of the claimed beacon positions; nullopt when no references.
std::optional<util::Vec2> centroid_estimate(const LocationReferences& refs);

/// Distance-weighted centroid (closer beacons weigh more); a common
/// refinement that still needs no solver. Weights are 1 / (d + epsilon).
std::optional<util::Vec2> weighted_centroid_estimate(
    const LocationReferences& refs, double epsilon_ft = 1.0);

}  // namespace sld::localization
