// Coverage-aware localization fallback ladder.
//
// Quarantine (lifecycle.hpp) deliberately removes beacons from service,
// and a framing attack tries to remove the *coverage-critical* ones — so
// a sensor can legitimately find itself with fewer or worse references
// than plain multilateration needs. Rather than fail, the ladder degrades
// through estimators with an explicit confidence tier in the result:
//
//   tier 0  multilateration  >= 3 refs, MMSE fit with acceptable RMS
//   tier 1  robust           >= 3 refs, outlier-discarding fit accepted
//   tier 2  centroid         any refs, distance-weighted centroid (no
//                            residual structure — coarse but available)
//
// Zero references is the only unlocalizable case. Disabled (the default),
// callers keep the seed's multilateration-or-fail behaviour.
#pragma once

#include <cstdint>
#include <optional>

#include "localization/location_reference.hpp"
#include "localization/multilateration.hpp"
#include "localization/robust.hpp"
#include "util/geometry.hpp"

namespace sld::localization {

struct FallbackConfig {
  /// Master switch; off preserves the strict multilateration-only path.
  bool enabled = false;
  /// A plain multilateration fit with RMS residual above this (feet)
  /// falls through to the robust estimator.
  double acceptable_rms_ft = 4.0;
  /// Robust-stage options (threshold mirrors acceptable_rms_ft).
  std::size_t min_references = 3;
};

/// Ladder rung the estimate came from, best first. The numeric values are
/// stable (traced and exported); lower = higher confidence.
enum class ConfidenceTier : std::uint8_t {
  kMultilateration = 0,
  kRobust = 1,
  kCentroid = 2,
};

const char* confidence_tier_name(ConfidenceTier tier);

struct FallbackResult {
  util::Vec2 position;
  /// RMS residual of the accepted fit (0 for the centroid rung, which
  /// carries no residual structure).
  double rms_residual_ft = 0.0;
  ConfidenceTier tier = ConfidenceTier::kMultilateration;
  /// References the robust rung discarded (empty elsewhere).
  std::size_t discarded = 0;
};

/// Runs the ladder. nullopt only when `refs` is empty.
std::optional<FallbackResult> localize_with_fallback(
    const LocationReferences& refs, const FallbackConfig& config);

}  // namespace sld::localization
