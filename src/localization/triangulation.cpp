#include "localization/triangulation.hpp"

#include <cmath>

namespace sld::localization {

std::optional<TriangulationResult> triangulate(
    const std::vector<BearingReference>& references) {
  if (references.size() < 2) return std::nullopt;

  // The node x lies on the line through beacon B with direction
  // u = (cos theta, sin theta); equivalently n . x = n . B for the normal
  // n = (-sin theta, cos theta). Solve the 2x2 normal equations of the
  // stacked constraints.
  double a11 = 0.0, a12 = 0.0, a22 = 0.0, b1 = 0.0, b2 = 0.0;
  for (const auto& r : references) {
    const double nx = -std::sin(r.bearing_rad);
    const double ny = std::cos(r.bearing_rad);
    const double rhs = nx * r.beacon_position.x + ny * r.beacon_position.y;
    a11 += nx * nx;
    a12 += nx * ny;
    a22 += ny * ny;
    b1 += nx * rhs;
    b2 += ny * rhs;
  }
  const double det = a11 * a22 - a12 * a12;
  if (std::abs(det) < 1e-9) return std::nullopt;  // parallel bearings

  TriangulationResult result;
  result.position = {(a22 * b1 - a12 * b2) / det,
                     (a11 * b2 - a12 * b1) / det};

  double sum = 0.0;
  for (const auto& r : references) {
    const double nx = -std::sin(r.bearing_rad);
    const double ny = std::cos(r.bearing_rad);
    const double resid = nx * (result.position.x - r.beacon_position.x) +
                         ny * (result.position.y - r.beacon_position.y);
    sum += resid * resid;
  }
  result.rms_residual_ft =
      std::sqrt(sum / static_cast<double>(references.size()));
  return result;
}

}  // namespace sld::localization
