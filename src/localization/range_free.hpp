// Range-free localization in the spirit of SerLoc (Lazos & Poovendran,
// WiSe'04 — the paper's related-work comparator [16]: "a secure range-free
// localization technique ... However, it cannot detect and remove
// compromised beacon nodes"). The sensor uses only *connectivity*: hearing
// beacon b proves the sensor lies inside b's coverage disk, so it
// estimates its position as the centroid of the intersection of all heard
// beacons' disks (computed by grid sampling, as SerLoc's CoG of the
// overlapping region). No distances are measured, which removes the
// ranging attack surface but leaves the scheme fully exposed to location
// lies — the comparison the paper's argument rests on.
#pragma once

#include <optional>
#include <vector>

#include "util/geometry.hpp"

namespace sld::localization {

struct RangeFreeConfig {
  /// Beacon coverage radius, feet.
  double comm_range_ft = 150.0;
  /// Grid-sampling resolution for the region centroid, feet.
  double grid_step_ft = 5.0;
};

struct RangeFreeResult {
  util::Vec2 position;
  /// Number of grid samples inside the intersection (its area is
  /// samples * step^2) — a confidence proxy.
  std::size_t region_samples = 0;
};

/// Centroid of the intersection of the heard beacons' coverage disks;
/// nullopt when no beacon is heard or the claimed disks are inconsistent
/// (empty intersection — itself a tamper signal).
std::optional<RangeFreeResult> range_free_estimate(
    const std::vector<util::Vec2>& heard_beacon_positions,
    const RangeFreeConfig& config = {});

/// A SeRLoc sector constraint: the beacon transmitted on a directional
/// antenna, so hearing it proves the sensor lies in the wedge of
/// half-angle `sector_halfwidth_rad` around bearing `sector_bearing_rad`
/// (as seen *from the beacon*), intersected with the coverage disk.
struct SectorReference {
  util::Vec2 beacon_position;
  double sector_bearing_rad = 0.0;
  double sector_halfwidth_rad = 0.0;
};

/// Full SeRLoc estimate: centroid of the intersection of the sector
/// wedges. Degenerates to `range_free_estimate` with half-width pi.
std::optional<RangeFreeResult> serloc_estimate(
    const std::vector<SectorReference>& sectors,
    const RangeFreeConfig& config = {});

}  // namespace sld::localization
