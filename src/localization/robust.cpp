#include "localization/robust.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace sld::localization {

std::optional<RobustResult> robust_multilateration(
    const LocationReferences& references, const RobustOptions& options) {
  if (options.min_references < 3)
    throw std::invalid_argument(
        "robust_multilateration: need at least 3 references for a 2-D fix");
  if (options.acceptable_rms_ft <= 0.0)
    throw std::invalid_argument("robust_multilateration: bad threshold");

  MultilaterationSolver solver(options.solver);

  LocationReferences working = references;
  std::vector<std::size_t> original_index(references.size());
  std::iota(original_index.begin(), original_index.end(), 0);

  RobustResult result;
  for (;;) {
    auto fit = solver.solve(working);
    if (!fit) return std::nullopt;
    if (fit->rms_residual_ft <= options.acceptable_rms_ft ||
        working.size() <= options.min_references) {
      result.fit = std::move(*fit);
      return result;
    }
    // Drop the worst-residual reference and retry.
    std::size_t worst = 0;
    double worst_abs = -1.0;
    for (std::size_t i = 0; i < fit->residuals_ft.size(); ++i) {
      const double a = std::abs(fit->residuals_ft[i]);
      if (a > worst_abs) {
        worst_abs = a;
        worst = i;
      }
    }
    result.discarded.push_back(original_index[worst]);
    working.erase(working.begin() + static_cast<std::ptrdiff_t>(worst));
    original_index.erase(original_index.begin() +
                         static_cast<std::ptrdiff_t>(worst));
  }
}

}  // namespace sld::localization
