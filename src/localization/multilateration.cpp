#include "localization/multilateration.hpp"

#include <cmath>
#include <stdexcept>

#include "obs/profiler.hpp"

namespace sld::localization {

MultilaterationSolver::MultilaterationSolver(MultilaterationOptions options)
    : options_(options) {
  if (options_.max_iterations == 0)
    throw std::invalid_argument("MultilaterationSolver: zero iterations");
  if (options_.convergence_ft <= 0.0)
    throw std::invalid_argument("MultilaterationSolver: bad tolerance");
}

double rms_residual(const util::Vec2& position,
                    const LocationReferences& references) {
  if (references.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& r : references) {
    const double err =
        util::distance(position, r.beacon_position) - r.measured_distance_ft;
    sum += err * err;
  }
  return std::sqrt(sum / static_cast<double>(references.size()));
}

std::optional<util::Vec2> MultilaterationSolver::linear_initial_guess(
    const LocationReferences& refs) const {
  // Subtracting the last circle equation from the others linearises the
  // system: 2(xn - xi) x + 2(yn - yi) y = (di^2 - dn^2) - (xi^2 - xn^2)
  // - (yi^2 - yn^2). Solve the 2x2 normal equations.
  const auto& last = refs.back();
  double a11 = 0.0, a12 = 0.0, a22 = 0.0, b1 = 0.0, b2 = 0.0;
  for (std::size_t i = 0; i + 1 < refs.size(); ++i) {
    const auto& r = refs[i];
    const double ax = 2.0 * (last.beacon_position.x - r.beacon_position.x);
    const double ay = 2.0 * (last.beacon_position.y - r.beacon_position.y);
    const double rhs =
        (r.measured_distance_ft * r.measured_distance_ft -
         last.measured_distance_ft * last.measured_distance_ft) -
        (r.beacon_position.norm_squared() -
         last.beacon_position.norm_squared());
    a11 += ax * ax;
    a12 += ax * ay;
    a22 += ay * ay;
    b1 += ax * rhs;
    b2 += ay * rhs;
  }
  const double det = a11 * a22 - a12 * a12;
  if (std::abs(det) < 1e-9) return std::nullopt;  // collinear beacons
  return util::Vec2{(a22 * b1 - a12 * b2) / det, (a11 * b2 - a12 * b1) / det};
}

std::optional<LocalizationResult> MultilaterationSolver::solve(
    const LocationReferences& references) const {
  SLD_PROF_SCOPE("mlat.solve");
  if (references.size() < 3) return std::nullopt;

  auto guess = linear_initial_guess(references);
  if (!guess) return std::nullopt;
  util::Vec2 p = *guess;

  double damping = options_.initial_damping;
  double prev_cost = rms_residual(p, references);
  std::size_t iterations = 0;

  for (std::size_t it = 0; it < options_.max_iterations; ++it) {
    ++iterations;
    // Normal equations for J^T J delta = J^T r with Levenberg damping.
    double a11 = damping, a12 = 0.0, a22 = damping, g1 = 0.0, g2 = 0.0;
    for (const auto& r : references) {
      const util::Vec2 diff = p - r.beacon_position;
      const double dist = std::max(diff.norm(), 1e-9);
      const double jx = diff.x / dist;
      const double jy = diff.y / dist;
      const double resid = dist - r.measured_distance_ft;
      a11 += jx * jx;
      a12 += jx * jy;
      a22 += jy * jy;
      g1 += jx * resid;
      g2 += jy * resid;
    }
    const double det = a11 * a22 - a12 * a12;
    if (std::abs(det) < 1e-12) break;
    const util::Vec2 delta{(a22 * g1 - a12 * g2) / det,
                           (a11 * g2 - a12 * g1) / det};
    const util::Vec2 candidate = p - delta;
    const double cost = rms_residual(candidate, references);
    if (cost <= prev_cost) {
      p = candidate;
      prev_cost = cost;
      damping = std::max(damping * 0.5, 1e-9);
      if (delta.norm() < options_.convergence_ft) break;
    } else {
      damping *= 4.0;  // reject step, steepen toward gradient descent
      if (damping > 1e6) break;
    }
  }

  LocalizationResult result;
  result.position = p;
  result.iterations = iterations;
  result.residuals_ft.reserve(references.size());
  for (const auto& r : references) {
    result.residuals_ft.push_back(
        util::distance(p, r.beacon_position) - r.measured_distance_ft);
  }
  result.rms_residual_ft = rms_residual(p, references);
  return result;
}

}  // namespace sld::localization
