#include "localization/iterative.hpp"

#include <stdexcept>

#include "localization/robust.hpp"

namespace sld::localization {

IterativeResult iterative_multilateration(
    const std::unordered_map<std::uint32_t, util::Vec2>& seed_beacons,
    const std::unordered_map<std::uint32_t, util::Vec2>& true_positions,
    const IterativeConfig& config, util::Rng& rng) {
  if (config.comm_range_ft <= 0.0)
    throw std::invalid_argument("iterative_multilateration: bad range");
  if (config.max_ranging_error_ft < 0.0)
    throw std::invalid_argument("iterative_multilateration: bad error bound");

  // Located references: id -> (claimed/estimated position). True positions
  // of located nodes are tracked separately for measurement physics.
  std::unordered_map<std::uint32_t, util::Vec2> located = seed_beacons;
  std::unordered_map<std::uint32_t, util::Vec2> located_truth;
  for (const auto& [id, pos] : seed_beacons) {
    // Seed beacons know their positions exactly; physics == claim.
    const auto it = true_positions.find(id);
    located_truth[id] = it != true_positions.end() ? it->second : pos;
  }

  IterativeResult result;
  MultilaterationSolver solver(config.solver);
  const double r2 = config.comm_range_ft * config.comm_range_ft;

  for (std::size_t round = 1; round <= config.max_rounds; ++round) {
    std::vector<std::pair<std::uint32_t, IterativeNodeResult>> newly;
    for (const auto& [id, truth] : true_positions) {
      if (located.contains(id)) continue;
      LocationReferences refs;
      for (const auto& [ref_id, ref_claimed] : located) {
        const auto& ref_truth = located_truth.at(ref_id);
        if (util::distance_squared(truth, ref_truth) > r2) continue;
        const double measured =
            util::distance(truth, ref_truth) +
            rng.uniform(-config.max_ranging_error_ft,
                        config.max_ranging_error_ft);
        refs.push_back({ref_id, ref_claimed, std::max(0.0, measured)});
      }
      if (refs.size() < 3) continue;
      IterativeNodeResult node;
      if (config.robust) {
        RobustOptions ropt;
        ropt.solver = config.solver;
        // Allow promoted-beacon position error on top of ranging noise.
        ropt.acceptable_rms_ft = 2.0 * config.max_ranging_error_ft + 1.0;
        const auto fit = robust_multilateration(refs, ropt);
        if (!fit) continue;
        node.estimate = fit->fit.position;
        node.references = refs.size() - fit->discarded.size();
      } else {
        const auto fit = solver.solve(refs);
        if (!fit) continue;
        node.estimate = fit->position;
        node.references = refs.size();
      }
      node.round = round;
      newly.emplace_back(id, node);
    }
    if (newly.empty()) break;
    result.rounds_run = round;
    for (auto& [id, node] : newly) {
      located[id] = node.estimate;       // serves as a claimed reference
      located_truth[id] = true_positions.at(id);  // physics stays honest
      result.localized.emplace(id, node);
    }
  }
  return result;
}

}  // namespace sld::localization
