#include "sim/network.hpp"

#include <stdexcept>

namespace sld::sim {

Network::Network(ChannelConfig channel_config, std::uint64_t seed)
    : channel_(scheduler_, channel_config, util::Rng(seed)) {}

void Network::register_node(std::unique_ptr<Node> node) {
  Node* raw = node.get();
  if (by_id_.contains(raw->id()))
    throw std::invalid_argument("Network: duplicate node id");
  channel_.add_node(raw);
  raw->attach(&channel_, &scheduler_);
  by_id_.emplace(raw->id(), raw);
  order_.push_back(raw);
  owned_.push_back(std::move(node));
}

Node* Network::node(NodeId id) const {
  const auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : it->second;
}

std::vector<NodeId> Network::direct_neighbors(NodeId id) const {
  const Node* center = node(id);
  if (center == nullptr)
    throw std::invalid_argument("Network::direct_neighbors: unknown node");
  std::vector<NodeId> out;
  for (const Node* other : order_) {
    if (other == center) continue;
    if (channel_.direct_reach(center->position(), center->range(), *other))
      out.push_back(other->id());
  }
  return out;
}

std::vector<NodeId> Network::connected_nodes(NodeId id) const {
  const Node* center = node(id);
  if (center == nullptr)
    throw std::invalid_argument("Network::connected_nodes: unknown node");
  std::vector<NodeId> out;
  for (const Node* other : order_) {
    if (other == center) continue;
    if (channel_.connected(*center, *other)) out.push_back(other->id());
  }
  return out;
}

void Network::start_all() {
  for (Node* n : order_) n->start();

  // Fault-plan lifecycle transitions. Only configured plans schedule
  // anything, so fault-free runs keep the seed event sequence bit-for-bit.
  const FaultPlan& plan = channel_.faults().plan();
  for (const auto& w : plan.crashes) {
    Node* n = node(w.node);
    if (n == nullptr) continue;
    scheduler_.schedule_at(w.start, [n]() { n->crash_now(); });
    scheduler_.schedule_at(w.end, [n]() { n->reboot_now(); });
  }
  for (const auto& p : plan.partitions) {
    const auto nodes_a = static_cast<std::uint64_t>(p.side_a.size());
    const SimTime duration = p.end - p.start;
    scheduler_.schedule_at(p.start, [this, nodes_a]() {
      const obs::Tracer& trace = channel_.tracer();
      if (trace.on())
        trace.emit(trace.event("partition.start").f("nodes_a", nodes_a));
    });
    scheduler_.schedule_at(p.end, [this, duration]() {
      const obs::Tracer& trace = channel_.tracer();
      if (trace.on())
        trace.emit(trace.event("partition.heal")
                       .f("duration_ns", static_cast<std::int64_t>(duration)));
    });
  }
}

std::uint64_t Network::run(std::uint64_t max_events) {
  return scheduler_.run(max_events);
}

}  // namespace sld::sim
