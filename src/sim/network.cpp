#include "sim/network.hpp"

#include <stdexcept>

namespace sld::sim {

Network::Network(ChannelConfig channel_config, std::uint64_t seed)
    : channel_(scheduler_, channel_config, util::Rng(seed)) {}

void Network::register_node(std::unique_ptr<Node> node) {
  Node* raw = node.get();
  if (by_id_.contains(raw->id()))
    throw std::invalid_argument("Network: duplicate node id");
  channel_.add_node(raw);
  raw->attach(&channel_, &scheduler_);
  by_id_.emplace(raw->id(), raw);
  order_.push_back(raw);
  owned_.push_back(std::move(node));
}

Node* Network::node(NodeId id) const {
  const auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : it->second;
}

std::vector<NodeId> Network::direct_neighbors(NodeId id) const {
  const Node* center = node(id);
  if (center == nullptr)
    throw std::invalid_argument("Network::direct_neighbors: unknown node");
  std::vector<NodeId> out;
  for (const Node* other : order_) {
    if (other == center) continue;
    if (channel_.direct_reach(center->position(), center->range(), *other))
      out.push_back(other->id());
  }
  return out;
}

std::vector<NodeId> Network::connected_nodes(NodeId id) const {
  const Node* center = node(id);
  if (center == nullptr)
    throw std::invalid_argument("Network::connected_nodes: unknown node");
  std::vector<NodeId> out;
  for (const Node* other : order_) {
    if (other == center) continue;
    if (channel_.connected(*center, *other)) out.push_back(other->id());
  }
  return out;
}

void Network::start_all() {
  for (Node* n : order_) n->start();
}

std::uint64_t Network::run(std::uint64_t max_events) {
  return scheduler_.run(max_events);
}

}  // namespace sld::sim
