#include "sim/event.hpp"

#include <stdexcept>
#include <utility>

#include "obs/memstats.hpp"

namespace sld::sim {

void EventQueue::push(SimTime when, SimTime queued_at,
                      std::function<void()> action) {
  SLD_MEM_SCOPE("scheduler");
  heap_.push_back(Event{when, next_seq_++, queued_at, std::move(action)});
  // Sift up: hole-based (move the parent down until the slot is found),
  // one element move per level crossed.
  std::size_t i = heap_.size() - 1;
  Event ev = std::move(heap_[i]);
  std::uint64_t steps = 0;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!later(heap_[parent], ev)) break;
    heap_[i] = std::move(heap_[parent]);
    i = parent;
    ++steps;
  }
  heap_[i] = std::move(ev);
  sift_up_steps_ += steps;
  if (hot_ != nullptr) {
    if (hot_->sift_up != nullptr)
      hot_->sift_up->observe(static_cast<double>(steps));
    if (hot_->sift_up_steps != nullptr) hot_->sift_up_steps->inc(steps);
    if (hot_->queue_depth != nullptr)
      hot_->queue_depth->observe(static_cast<double>(heap_.size()));
  }
}

SimTime EventQueue::next_time() const {
  if (heap_.empty()) throw std::logic_error("EventQueue::next_time: empty");
  return heap_.front().when;
}

Event EventQueue::pop() {
  if (heap_.empty()) throw std::logic_error("EventQueue::pop: empty");
  Event top = std::move(heap_.front());
  std::uint64_t steps = 0;
  if (heap_.size() > 1) {
    // Sift the last element down from the root.
    Event ev = std::move(heap_.back());
    heap_.pop_back();
    std::size_t i = 0;
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t left = 2 * i + 1;
      if (left >= n) break;
      const std::size_t right = left + 1;
      std::size_t smallest = left;
      if (right < n && later(heap_[left], heap_[right])) smallest = right;
      if (!later(ev, heap_[smallest])) break;
      heap_[i] = std::move(heap_[smallest]);
      i = smallest;
      ++steps;
    }
    heap_[i] = std::move(ev);
  } else {
    heap_.pop_back();
  }
  sift_down_steps_ += steps;
  if (hot_ != nullptr) {
    if (hot_->sift_down != nullptr)
      hot_->sift_down->observe(static_cast<double>(steps));
    if (hot_->sift_down_steps != nullptr) hot_->sift_down_steps->inc(steps);
    if (hot_->event_wait_ns != nullptr)
      hot_->event_wait_ns->observe(
          static_cast<double>(top.when - top.queued_at));
  }
  return top;
}

void EventQueue::clear() {
  heap_.clear();
  next_seq_ = 0;
  sift_up_steps_ = 0;
  sift_down_steps_ = 0;
}

}  // namespace sld::sim
