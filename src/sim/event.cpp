#include "sim/event.hpp"

#include <stdexcept>
#include <utility>

namespace sld::sim {

void EventQueue::push(SimTime when, std::function<void()> action) {
  heap_.push(Event{when, next_seq_++, std::move(action)});
}

SimTime EventQueue::next_time() const {
  if (heap_.empty()) throw std::logic_error("EventQueue::next_time: empty");
  return heap_.top().when;
}

Event EventQueue::pop() {
  if (heap_.empty()) throw std::logic_error("EventQueue::pop: empty");
  // priority_queue::top returns const&; the move is safe because we pop
  // immediately after.
  Event ev = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  return ev;
}

void EventQueue::clear() {
  while (!heap_.empty()) heap_.pop();
  next_seq_ = 0;
}

}  // namespace sld::sim
