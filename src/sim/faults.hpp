// Composable fault injection for the radio channel.
//
// The paper assumes "reliable delivery via retransmission"; a FaultPlan
// removes that assumption in a controlled, deterministic way so the
// detection/revocation suite can be evaluated under realistic channel
// conditions: i.i.d. and bursty (Gilbert-Elliott) packet loss, duplication,
// payload corruption (which MAC verification must catch), delay jitter,
// and scheduled node crash/reboot windows.
//
// A default-constructed FaultPlan injects nothing AND draws nothing from
// the fault RNG stream, so experiments with faults disabled reproduce the
// fault-free event sequence bit-for-bit.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/message.hpp"
#include "sim/time.hpp"
#include "util/rng.hpp"

namespace sld::sim {

/// Two-state Gilbert-Elliott loss chain, evolved per link and per packet.
/// The stationary loss rate is
///   p_bad_stationary * loss_bad + (1 - p_bad_stationary) * loss_good
/// with p_bad_stationary = p_enter_bad / (p_enter_bad + p_exit_bad), and
/// the mean burst length is 1 / p_exit_bad packets.
struct GilbertElliottConfig {
  /// Per-packet probability of entering the bad (lossy) state. Zero keeps
  /// the chain disabled.
  double p_enter_bad = 0.0;
  /// Per-packet probability of leaving the bad state (1 / mean burst len).
  double p_exit_bad = 0.25;
  /// Loss probability while in the good state.
  double loss_good = 0.0;
  /// Loss probability while in the bad state.
  double loss_bad = 1.0;

  bool enabled() const { return p_enter_bad > 0.0; }

  /// Parameters hitting `target_loss` average loss with `mean_burst_len`
  /// consecutive drops per burst (loss_good = 0, loss_bad = 1).
  static GilbertElliottConfig for_average_loss(double target_loss,
                                               double mean_burst_len);
};

/// A node is offline (neither sends nor receives) during [start, end).
/// On reboot at `end` the node has lost its volatile state: Network
/// schedules crash/reboot transitions that run the node's Recoverable
/// hooks, and Node-owned timers scheduled before the window never fire.
struct CrashWindow {
  NodeId node = 0;
  SimTime start = 0;
  SimTime end = 0;
};

/// Deterministic per-node clock rate error. Each node runs its local clock
/// at (1 + rate_ppm(node) * 1e-6) times real rate, with rate_ppm(node)
/// drawn from [-max_drift_ppm, +max_drift_ppm] by hashing the node id, so
/// the assignment is independent of call order and of every other RNG
/// stream. The dominant effect on an RTT measurement is the responder's
/// turnaround (t3 - t2) being timed by two different clocks:
///   skew_cycles = (rate_rx - rate_tx) * 1e-6 * turnaround_cycles.
struct ClockDriftConfig {
  /// Maximum absolute clock rate error, parts per million. Zero disables.
  double max_drift_ppm = 0.0;
  /// Modeled responder turnaround (t3 - t2) in CPU cycles. Default is
  /// ~20 ms at 7.3728 MHz — MAC backoff plus processing on a mote.
  double turnaround_cycles = 147'456.0;

  bool enabled() const { return max_drift_ppm > 0.0; }
};

/// The network is bipartitioned during [start, end): deliveries crossing
/// the (side_a | everyone else) cut are dropped at their arrival time;
/// deliveries within one side are unaffected. Node ids are physical ids
/// (the Channel resolves aliases before checking).
struct PartitionWindow {
  std::vector<NodeId> side_a;
  SimTime start = 0;
  SimTime end = 0;
};

struct FaultPlan {
  /// i.i.d. per-delivery loss probability, applied to every link.
  double loss_probability = 0.0;
  /// Bursty loss on top of (or instead of) the i.i.d. term.
  GilbertElliottConfig burst;
  /// Probability a delivered packet arrives twice (the duplicate trails
  /// one packet air time behind the original).
  double duplicate_probability = 0.0;
  /// Probability the delivered payload has bytes flipped in flight; the
  /// receiver's MAC verification is expected to reject such packets.
  double corruption_probability = 0.0;
  /// Extra uniform [0, max_extra_delay_ns) delivery delay ("jitter").
  SimTime max_extra_delay_ns = 0;
  /// Additional loss probability for deliveries *to* specific nodes
  /// (models a node with a weak/occluded radio).
  std::unordered_map<NodeId, double> node_loss;
  /// Additional loss probability for specific (src, dst) links.
  /// Keys are packed with link_key().
  std::unordered_map<std::uint64_t, double> link_loss;
  /// Scheduled crash/reboot windows.
  std::vector<CrashWindow> crashes;
  /// Per-node clock rate error feeding RTT / time-sync measurements.
  ClockDriftConfig clock_drift;
  /// Scheduled network bipartitions.
  std::vector<PartitionWindow> partitions;

  static std::uint64_t link_key(NodeId src, NodeId dst) {
    return (static_cast<std::uint64_t>(src) << 32) | dst;
  }

  /// True if any fault source can fire. False guarantees the injector
  /// never draws randomness and never perturbs deliveries.
  bool any_enabled() const;
};

/// Decides the fate of individual deliveries according to a FaultPlan.
/// Owned by the Channel; all randomness comes from its private RNG stream,
/// which is only consumed when the corresponding fault is enabled.
class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, util::Rng rng);

  const FaultPlan& plan() const { return plan_; }
  bool enabled() const { return enabled_; }

  /// True if `node` is inside one of its crash windows at time `t`.
  bool node_crashed(NodeId node, SimTime t) const;

  /// True if a (src -> dst) delivery crosses an active partition cut at
  /// time `t`. Pure time/set lookup; draws no randomness.
  bool partition_blocked(NodeId src, NodeId dst, SimTime t) const;

  /// `node`'s fixed clock rate error in ppm (zero when drift is disabled).
  double drift_ppm(NodeId node) const;

  /// Drift-induced skew of an RTT measured by `receiver` against
  /// `sender`'s responder turnaround, in CPU cycles. Signed.
  double rtt_skew_cycles(NodeId receiver, NodeId sender) const;

  /// What happens to one (src -> dst) delivery. Draws only for faults the
  /// plan enables; evolves the link's Gilbert-Elliott chain as a side
  /// effect.
  struct DeliveryFate {
    bool dropped = false;
    bool duplicated = false;
    bool corrupted = false;
    SimTime extra_delay_ns = 0;
  };
  DeliveryFate decide(NodeId src, NodeId dst);

  /// Flips at least one bit of `msg` (payload byte, or the MAC tag for an
  /// empty payload) so authentication must fail at the receiver.
  void corrupt(Message& msg);

 private:
  bool link_lost(NodeId src, NodeId dst);

  FaultPlan plan_;
  util::Rng rng_;
  bool enabled_ = false;
  /// Seed for the per-node drift hash; derived once from a fork of the
  /// injector RNG so drift assignments never consume the decide() stream.
  std::uint64_t drift_seed_ = 0;
  /// Gilbert-Elliott state per link: present and true => in the bad state.
  std::unordered_map<std::uint64_t, bool> link_in_bad_;
  /// plan_.partitions[i].side_a as a set, for O(1) membership checks.
  std::vector<std::unordered_set<NodeId>> partition_sides_;
};

}  // namespace sld::sim
