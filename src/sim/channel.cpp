#include "sim/channel.hpp"

#include <stdexcept>
#include <utility>

#include "check/invariant.hpp"
#include "obs/memstats.hpp"
#include "obs/profiler.hpp"
#include "util/geometry.hpp"

namespace sld::sim {

namespace {
const char* msg_type_name(MsgType type) {
  switch (type) {
    case MsgType::kBeaconRequest:
      return "request";
    case MsgType::kBeaconReply:
      return "reply";
    case MsgType::kAlertReport:
      return "alert";
    case MsgType::kRevocation:
      return "revocation";
    case MsgType::kAppData:
      return "app";
  }
  return "unknown";
}
}  // namespace

Channel::Channel(Scheduler& scheduler, ChannelConfig config, util::Rng rng)
    : scheduler_(scheduler),
      config_(std::move(config)),
      rng_(rng),
      // The injector gets its own forked stream so enabling faults never
      // perturbs the delivery-loss draws of the main stream (and a
      // disabled plan never draws at all).
      faults_(config_.faults, rng.fork(0xfa0175)) {
  if (config_.loss_probability < 0.0 || config_.loss_probability > 1.0)
    throw std::invalid_argument("Channel: loss probability outside [0, 1]");
}

void Channel::add_node(Node* node) {
  if (node == nullptr) throw std::invalid_argument("Channel::add_node: null");
  if (!nodes_.emplace(node->id(), node).second)
    throw std::invalid_argument("Channel::add_node: duplicate node id");
}

void Channel::add_alias(NodeId alias, Node* node) {
  if (node == nullptr) throw std::invalid_argument("Channel::add_alias: null");
  if (!nodes_.emplace(alias, node).second)
    throw std::invalid_argument("Channel::add_alias: id already in use");
}

void Channel::add_wormhole(WormholeLink link) {
  if (link.exit_range_ft <= 0.0)
    throw std::invalid_argument("Channel::add_wormhole: bad exit range");
  wormholes_.push_back(link);
}

void Channel::add_observer(RadioObserver* observer) {
  if (observer == nullptr)
    throw std::invalid_argument("Channel::add_observer: null");
  observers_.push_back(observer);
}

SimTime Channel::packet_airtime_ns(std::size_t payload_bytes) const {
  const double bits = static_cast<double>(
                          (payload_bytes + config_.frame_overhead_bytes) * 8);
  return static_cast<SimTime>(bits / kRadioBitsPerSecond * 1e9);
}

double Channel::packet_airtime_cycles(std::size_t payload_bytes) const {
  const double bits = static_cast<double>(
                          (payload_bytes + config_.frame_overhead_bytes) * 8);
  return bits * kCyclesPerBit;
}

bool Channel::direct_reach(const util::Vec2& from_pos, double from_range,
                           const Node& to) const {
  return util::distance_squared(from_pos, to.position()) <=
         from_range * from_range;
}

bool Channel::connected(const Node& a, const Node& b) const {
  if (direct_reach(a.position(), a.range(), b)) return true;
  for (const auto& w : wormholes_) {
    const bool a_to_mouth_a =
        util::distance_squared(a.position(), w.mouth_a) <=
        a.range() * a.range();
    const bool b_hears_mouth_b =
        util::distance_squared(w.mouth_b, b.position()) <=
        w.exit_range_ft * w.exit_range_ft;
    if (a_to_mouth_a && b_hears_mouth_b) return true;
    const bool a_to_mouth_b =
        util::distance_squared(a.position(), w.mouth_b) <=
        a.range() * a.range();
    const bool b_hears_mouth_a =
        util::distance_squared(w.mouth_a, b.position()) <=
        w.exit_range_ft * w.exit_range_ft;
    if (a_to_mouth_b && b_hears_mouth_a) return true;
  }
  return false;
}

Node* Channel::find(NodeId id) const {
  const auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : it->second;
}

void Channel::unicast(const Node& sender, Message msg) {
  SLD_MEM_SCOPE("channel");
  // A crashed node does not transmit at all.
  if (faults_.enabled() &&
      faults_.node_crashed(sender.id(), scheduler_.now())) {
    ++stats_.crashed_drops;
    ++stats_.crashed_tx_drops;
    if (trace_.on())
      trace_.emit(trace_.event("pkt.crash_tx").f("node", sender.id()));
    return;
  }
  if (trace_.on()) {
    trace_.emit(trace_.event("pkt.send")
                    .f("node", sender.id())
                    .f("src", msg.src)
                    .f("dst", msg.dst)
                    .f("type", msg_type_name(msg.type))
                    .f("bytes", static_cast<std::uint64_t>(
                                    msg.payload.size() +
                                    config_.frame_overhead_bytes)));
  }
  TxContext ctx;
  ctx.radiating_position = sender.position();
  ctx.radiating_range = sender.range();
  auto& radio = radio_[sender.id()];
  ++radio.packets_sent;
  radio.bytes_sent += msg.payload.size() + config_.frame_overhead_bytes;
  transmit(ctx, msg);
}

NodeRadioStats Channel::node_radio(NodeId id) const {
  const auto it = radio_.find(id);
  return it == radio_.end() ? NodeRadioStats{} : it->second;
}

NodeRadioStats Channel::total_radio() const {
  NodeRadioStats total;
  for (const auto& [id, r] : radio_) {
    total.packets_sent += r.packets_sent;
    total.packets_received += r.packets_received;
    total.bytes_sent += r.bytes_sent;
    total.bytes_received += r.bytes_received;
  }
  return total;
}

void Channel::inject(const TxContext& ctx, Message msg) {
  if (ctx.radiating_range <= 0.0)
    throw std::invalid_argument("Channel::inject: bad radiating range");
  transmit(ctx, msg);
}

void Channel::transmit(const TxContext& ctx, const Message& msg) {
  SLD_PROF_SCOPE("channel.transmit");
  SLD_MEM_SCOPE("channel");
  ++stats_.transmissions;

  // Nodes examined by this transmission's topology scan — the fan-out a
  // spatial index would collapse. One histogram observation per transmit.
  std::uint64_t scanned = 0;
  const auto note_scan = [&]() {
    if (hot_ == nullptr) return;
    if (hot_->scans != nullptr) hot_->scans->inc();
    if (hot_->scan_nodes != nullptr) hot_->scan_nodes->inc(scanned);
    if (hot_->scan_fanout != nullptr)
      hot_->scan_fanout->observe(static_cast<double>(scanned));
  };

  // Eavesdroppers / jammers hear everything radiating within range.
  bool suppressed = false;
  for (auto* obs : observers_) {
    const double d2 =
        util::distance_squared(ctx.radiating_position, obs->observer_position());
    ++scanned;
    if (d2 <= ctx.radiating_range * ctx.radiating_range) {
      suppressed = obs->on_overhear(msg, ctx) || suppressed;
    }
  }
  if (suppressed) {
    ++stats_.suppressed;
    note_scan();
    if (trace_.on())
      trace_.emit(trace_.event("pkt.suppressed")
                      .f("src", msg.src)
                      .f("dst", msg.dst));
    return;
  }

  Node* dst = find(msg.dst);

  // Direct path.
  if (dst != nullptr &&
      direct_reach(ctx.radiating_position, ctx.radiating_range, *dst)) {
    deliver(*dst, ctx, msg);
  } else if (dst != nullptr) {
    ++stats_.out_of_range;
    if (trace_.on())
      trace_.emit(trace_.event("pkt.out_of_range")
                      .f("src", msg.src)
                      .f("dst", msg.dst));
  }

  // Wormhole paths: any tunnel mouth within the radiating range picks the
  // signal up and re-radiates it at the opposite mouth. A copy that already
  // crossed a tunnel is not tunnelled again (no cascading).
  if (ctx.via_wormhole || dst == nullptr) {
    note_scan();
    return;
  }
  for (const auto& w : wormholes_) {
    struct Hop {
      const util::Vec2& in;
      const util::Vec2& out;
    };
    const Hop hops[2] = {{w.mouth_a, w.mouth_b}, {w.mouth_b, w.mouth_a}};
    for (const auto& hop : hops) {
      const double d2_in =
          util::distance_squared(ctx.radiating_position, hop.in);
      ++scanned;
      if (d2_in > ctx.radiating_range * ctx.radiating_range) continue;
      TxContext tunneled;
      tunneled.radiating_position = hop.out;
      tunneled.radiating_range = w.exit_range_ft;
      tunneled.extra_delay_cycles =
          ctx.extra_delay_cycles + w.extra_delay_cycles;
      tunneled.via_wormhole = true;
      tunneled.is_replay = true;
      if (direct_reach(hop.out, w.exit_range_ft, *dst)) {
        deliver(*dst, tunneled, msg);
      }
    }
  }
  note_scan();
}

void Channel::deliver(Node& dst, const TxContext& ctx, const Message& msg) {
  SLD_PROF_SCOPE("channel.deliver");
  ++stats_.delivery_attempts;
  if (rng_.bernoulli(config_.loss_probability)) {
    ++stats_.losses;
    check_conservation();
    if (trace_.on())
      trace_.emit(
          trace_.event("pkt.loss").f("src", msg.src).f("dst", msg.dst));
    return;
  }
  const double prop_ft =
      util::distance(ctx.radiating_position, dst.position());
  SimTime delay =
      packet_airtime_ns(msg.payload.size()) +
      static_cast<SimTime>(prop_ft / kSpeedOfLightFtPerSec * 1e9) +
      cycles_to_ns(ctx.extra_delay_cycles);

  if (!faults_.enabled()) {
    schedule_delivery(dst, ctx, msg, delay);
    check_conservation();
    return;
  }

  // A crashed receiver hears nothing. Windows are static, so the check can
  // run against the (deterministic) arrival time up front.
  if (faults_.node_crashed(dst.id(), scheduler_.now() + delay)) {
    ++stats_.crashed_drops;
    ++stats_.crashed_rx_drops;
    check_conservation();
    if (trace_.on())
      trace_.emit(trace_.event("pkt.crash_rx").f("node", dst.id()));
    return;
  }
  // Partition cuts are static time windows over physical node sets, so the
  // check runs against the deterministic arrival time and draws nothing.
  if (!faults_.plan().partitions.empty()) {
    const Node* src_node = find(msg.src);  // resolve aliases
    const NodeId src_phys = src_node != nullptr ? src_node->id() : msg.src;
    if (faults_.partition_blocked(src_phys, dst.id(),
                                  scheduler_.now() + delay)) {
      ++stats_.partition_drops;
      check_conservation();
      if (trace_.on())
        trace_.emit(trace_.event("pkt.partition_drop")
                        .f("src", msg.src)
                        .f("dst", msg.dst));
      return;
    }
  }
  auto fate = faults_.decide(msg.src, dst.id());
  if (fate.dropped) {
    ++stats_.dropped_by_fault;
    check_conservation();
    if (trace_.on())
      trace_.emit(trace_.event("pkt.fault_drop")
                      .f("src", msg.src)
                      .f("dst", msg.dst));
    return;
  }
  delay += fate.extra_delay_ns;
  if (fate.corrupted) {
    // The primary copy arrives damaged; MAC verification at the receiver
    // rejects it. A duplicate (below) is an independent clean copy.
    ++stats_.corrupted;
    if (trace_.on())
      trace_.emit(trace_.event("pkt.corrupt")
                      .f("src", msg.src)
                      .f("dst", msg.dst));
    Message damaged = msg;
    faults_.corrupt(damaged);
    schedule_delivery(dst, ctx, damaged, delay);
  } else {
    schedule_delivery(dst, ctx, msg, delay);
  }
  if (fate.duplicated) {
    ++stats_.duplicates;
    if (trace_.on())
      trace_.emit(trace_.event("pkt.duplicate")
                      .f("src", msg.src)
                      .f("dst", msg.dst));
    // The duplicate trails one packet air time behind the original.
    schedule_delivery(dst, ctx, msg,
                      delay + packet_airtime_ns(msg.payload.size()));
  }
  check_conservation();
}

void Channel::check_conservation() const {
  SLD_INVARIANT(stats_.deliveries + stats_.losses + stats_.dropped_by_fault +
                        stats_.crashed_rx_drops + stats_.partition_drops ==
                    stats_.delivery_attempts + stats_.duplicates,
                "packet conservation: deliveries=" << stats_.deliveries
                    << " losses=" << stats_.losses << " fault_drops="
                    << stats_.dropped_by_fault << " crashed_rx="
                    << stats_.crashed_rx_drops << " partition="
                    << stats_.partition_drops << " attempts="
                    << stats_.delivery_attempts << " duplicates="
                    << stats_.duplicates);
  SLD_INVARIANT(stats_.crashed_drops ==
                    stats_.crashed_tx_drops + stats_.crashed_rx_drops,
                "crash accounting: total=" << stats_.crashed_drops
                    << " tx=" << stats_.crashed_tx_drops
                    << " rx=" << stats_.crashed_rx_drops);
}

void Channel::schedule_delivery(Node& dst, const TxContext& ctx,
                                const Message& msg, SimTime delay) {
  ++stats_.deliveries;
  if (ctx.via_wormhole) ++stats_.wormhole_deliveries;
  if (hot_ != nullptr && hot_->packet_lifetime_ns != nullptr)
    hot_->packet_lifetime_ns->observe(static_cast<double>(delay));
  if (trace_.on()) {
    trace_.emit(trace_.event("pkt.deliver")
                    .f("src", msg.src)
                    .f("dst", msg.dst)
                    .f("type", msg_type_name(msg.type))
                    .f("wormhole", ctx.via_wormhole)
                    .f("delay_ns", static_cast<std::int64_t>(delay)));
  }
  auto& radio = radio_[dst.id()];
  ++radio.packets_received;
  radio.bytes_received += msg.payload.size() + config_.frame_overhead_bytes;
  Node* dst_ptr = &dst;
  TxContext ctx_copy = ctx;
  Message msg_copy = msg;
  scheduler_.schedule_after(delay, [this, dst_ptr, ctx_copy, msg_copy]() {
    Delivery d{msg_copy, ctx_copy, scheduler_.now()};
    dst_ptr->on_message(d);
  });
}

}  // namespace sld::sim
