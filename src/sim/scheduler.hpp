// The simulation clock + run loop.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/event.hpp"
#include "sim/time.hpp"

namespace sld::sim {

/// Owns virtual time and the event queue; advances time by executing events
/// in (time, FIFO) order.
class Scheduler {
 public:
  using TimeProbe = std::function<void(SimTime)>;

  SimTime now() const { return now_; }

  /// Observer invoked with the new clock value whenever time advances —
  /// after the decision to move the clock, before any event at the new
  /// time executes (so the observer sees strictly pre-t state). This is
  /// how the time-series sampler closes windows without scheduling a
  /// single event: the run loop stays event-for-event identical, and an
  /// empty probe (the default) costs one cached branch per event.
  void set_time_probe(TimeProbe probe) {
    probe_ = std::move(probe);
    probe_on_ = static_cast<bool>(probe_);
  }

  /// Schedules `action` at absolute time `when` (>= now).
  void schedule_at(SimTime when, std::function<void()> action);

  /// Schedules `action` `delay` nanoseconds from now (delay >= 0).
  void schedule_after(SimTime delay, std::function<void()> action);

  /// Runs until the queue is empty or `max_events` have executed.
  /// Returns the number of events executed.
  std::uint64_t run(std::uint64_t max_events = ~0ULL);

  /// Runs events with time <= `until`. Time advances to `until` even if
  /// the queue drains earlier. Returns the number of events executed.
  std::uint64_t run_until(SimTime until);

  bool idle() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }

  /// Total events executed since construction (or the last reset()).
  std::uint64_t executed() const { return executed_; }

  /// High-water mark of the pending-event queue depth.
  std::size_t max_pending() const { return max_pending_; }

  /// Optional hot-path micro-counter sink (queue depth, sift distances,
  /// event wait), forwarded to the event queue. Not owned; nullptr turns
  /// recording back off.
  void set_hot_stats(HotStats* hot) { queue_.set_hot_stats(hot); }

  /// Total heap sift steps since construction / reset().
  std::uint64_t sift_up_steps() const { return queue_.sift_up_steps(); }
  std::uint64_t sift_down_steps() const { return queue_.sift_down_steps(); }

  /// Drops all pending events and resets time and counters to zero.
  void reset();

 private:
  void note_depth() {
    if (queue_.size() > max_pending_) max_pending_ = queue_.size();
  }

  void advance_clock(SimTime when) {
    if (probe_on_ && when > now_) probe_(when);
    now_ = when;
  }

  SimTime now_ = 0;
  EventQueue queue_;
  std::uint64_t executed_ = 0;
  std::size_t max_pending_ = 0;
  TimeProbe probe_;
  bool probe_on_ = false;
};

}  // namespace sld::sim
