// Simulation time. The protocol layer runs on nanosecond-resolution virtual
// time; the RTT filter additionally reasons in MICA-mote CPU clock cycles
// (7.3728 MHz), the unit the paper's Figure 4 uses.
#pragma once

#include <cstdint>

namespace sld::sim {

/// Virtual time in nanoseconds since simulation start.
using SimTime = std::int64_t;

inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1000 * kNanosecond;
inline constexpr SimTime kMillisecond = 1000 * kMicrosecond;
inline constexpr SimTime kSecond = 1000 * kMillisecond;

/// MICA2-class mote: 7.3728 MHz CPU, 19.2 kbps radio -> exactly 384 CPU
/// cycles per transmitted bit, matching the paper's "one bit is about 384
/// clock cycles".
inline constexpr double kCpuHz = 7'372'800.0;
inline constexpr double kRadioBitsPerSecond = 19'200.0;
inline constexpr double kCyclesPerBit = kCpuHz / kRadioBitsPerSecond;  // 384

/// Speed of light in feet per second (the field is measured in feet).
inline constexpr double kSpeedOfLightFtPerSec = 983'571'056.43;

/// Converts CPU cycles to virtual nanoseconds.
constexpr SimTime cycles_to_ns(double cycles) {
  return static_cast<SimTime>(cycles / kCpuHz * 1e9);
}

/// Converts a distance in feet to radio propagation cycles (one way).
constexpr double propagation_cycles(double distance_ft) {
  return distance_ft / kSpeedOfLightFtPerSec * kCpuHz;
}

}  // namespace sld::sim
