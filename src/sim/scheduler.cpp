#include "sim/scheduler.hpp"

#include <stdexcept>

#include "check/invariant.hpp"
#include "obs/profiler.hpp"

namespace sld::sim {

void Scheduler::schedule_at(SimTime when, std::function<void()> action) {
  if (when < now_)
    throw std::invalid_argument("Scheduler::schedule_at: time in the past");
  queue_.push(when, now_, std::move(action));
  note_depth();
}

void Scheduler::schedule_after(SimTime delay, std::function<void()> action) {
  if (delay < 0)
    throw std::invalid_argument("Scheduler::schedule_after: negative delay");
  queue_.push(now_ + delay, now_, std::move(action));
  note_depth();
}

std::uint64_t Scheduler::run(std::uint64_t max_events) {
  std::uint64_t executed = 0;
  while (!queue_.empty() && executed < max_events) {
    Event ev = queue_.pop();
    SLD_INVARIANT(ev.when >= now_,
                  "time monotonicity: popped event at " << ev.when
                      << " ns while the clock reads " << now_ << " ns");
    advance_clock(ev.when);
    {
      SLD_PROF_SCOPE("sched.event");
      ev.action();
    }
    ++executed;
    ++executed_;
  }
  return executed;
}

std::uint64_t Scheduler::run_until(SimTime until) {
  std::uint64_t executed = 0;
  while (!queue_.empty() && queue_.next_time() <= until) {
    Event ev = queue_.pop();
    SLD_INVARIANT(ev.when >= now_,
                  "time monotonicity: popped event at " << ev.when
                      << " ns while the clock reads " << now_ << " ns");
    SLD_INVARIANT(ev.when <= until,
                  "no event after stop: event at " << ev.when
                      << " ns executed past run_until(" << until << ")");
    advance_clock(ev.when);
    {
      SLD_PROF_SCOPE("sched.event");
      ev.action();
    }
    ++executed;
    ++executed_;
  }
  if (now_ < until) advance_clock(until);
  return executed;
}

void Scheduler::reset() {
  queue_.clear();
  now_ = 0;
  executed_ = 0;
  max_pending_ = 0;
}

}  // namespace sld::sim
