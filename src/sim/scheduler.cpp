#include "sim/scheduler.hpp"

#include <stdexcept>

namespace sld::sim {

void Scheduler::schedule_at(SimTime when, std::function<void()> action) {
  if (when < now_)
    throw std::invalid_argument("Scheduler::schedule_at: time in the past");
  queue_.push(when, std::move(action));
}

void Scheduler::schedule_after(SimTime delay, std::function<void()> action) {
  if (delay < 0)
    throw std::invalid_argument("Scheduler::schedule_after: negative delay");
  queue_.push(now_ + delay, std::move(action));
}

std::uint64_t Scheduler::run(std::uint64_t max_events) {
  std::uint64_t executed = 0;
  while (!queue_.empty() && executed < max_events) {
    Event ev = queue_.pop();
    now_ = ev.when;
    ev.action();
    ++executed;
  }
  return executed;
}

std::uint64_t Scheduler::run_until(SimTime until) {
  std::uint64_t executed = 0;
  while (!queue_.empty() && queue_.next_time() <= until) {
    Event ev = queue_.pop();
    now_ = ev.when;
    ev.action();
    ++executed;
  }
  if (now_ < until) now_ = until;
  return executed;
}

void Scheduler::reset() {
  queue_.clear();
  now_ = 0;
}

}  // namespace sld::sim
