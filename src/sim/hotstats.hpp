// Hot-path micro-counter sinks for the simulator (the memstats layer's
// deterministic half; see obs/memstats.hpp for allocation telemetry).
//
// A `HotStats` is a bundle of registry-owned instrument pointers the
// scheduler's event queue and the channel write into directly as they run:
// queue depth per push, binary-heap sift distances, nodes scanned per
// transmission (the eavesdropper/observer fan-out the planned spatial
// index will collapse), and packet lifetime (schedule -> delivery
// sim-time). Every field is optional — a default-constructed HotStats (or
// a null pointer where one is wired) records nothing, so the hot paths
// pay one branch per site when the `--memstats` instruments are off and
// runs stay bit-for-bit identical to the seed. All recorded values are
// deterministic functions of (config, seed): they are part of the exact
// regression gate, identical at any `--jobs N`.
#pragma once

#include "obs/metrics.hpp"

namespace sld::sim {

struct HotStats {
  /// Queue depth observed after each push (hot.queue_depth).
  obs::Histogram* queue_depth = nullptr;
  /// Sift distance of each push / pop (hot.sift_up / hot.sift_down).
  obs::Histogram* sift_up = nullptr;
  obs::Histogram* sift_down = nullptr;
  /// Sim-time an event waited from schedule to execution
  /// (hot.event_wait_ns).
  obs::Histogram* event_wait_ns = nullptr;
  /// Nodes examined per transmission scan (hot.scan_fanout): every
  /// registered observer plus the wormhole tunnels tested.
  obs::Histogram* scan_fanout = nullptr;
  /// Sim-time from packet scheduling (the in-flight copy's allocation) to
  /// its delivery callback (the copy's release) (hot.packet_lifetime_ns).
  obs::Histogram* packet_lifetime_ns = nullptr;

  /// Running totals behind the histograms, for exact gating.
  obs::Counter* sift_up_steps = nullptr;
  obs::Counter* sift_down_steps = nullptr;
  obs::Counter* scans = nullptr;
  obs::Counter* scan_nodes = nullptr;
};

}  // namespace sld::sim
