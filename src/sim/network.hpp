// The Network ties scheduler + channel + node ownership together and offers
// neighbourhood queries.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/channel.hpp"
#include "sim/node.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace sld::sim {

class Network {
 public:
  explicit Network(ChannelConfig channel_config = {},
                   std::uint64_t seed = 0x5eedULL);

  Scheduler& scheduler() { return scheduler_; }
  const Scheduler& scheduler() const { return scheduler_; }
  Channel& channel() { return channel_; }
  const Channel& channel() const { return channel_; }

  /// Constructs a node of type T in place, registers it with the channel,
  /// and attaches it. Returns a reference valid for the Network's lifetime.
  template <typename T, typename... Args>
  T& emplace_node(Args&&... args) {
    auto owned = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *owned;
    register_node(std::move(owned));
    return ref;
  }

  /// Registers an extra address (e.g. a detecting ID) for `owner`.
  void add_alias(NodeId alias, Node& owner) { channel_.add_alias(alias, &owner); }

  Node* node(NodeId id) const;
  std::size_t node_count() const { return order_.size(); }
  const std::vector<Node*>& nodes() const { return order_; }

  /// IDs of nodes that can hear `id` directly (no wormholes).
  std::vector<NodeId> direct_neighbors(NodeId id) const;

  /// IDs of nodes connected to `id` directly or through a wormhole.
  std::vector<NodeId> connected_nodes(NodeId id) const;

  /// Calls start() on every node in registration order.
  void start_all();

  /// Runs the simulation until the event queue drains (bounded by
  /// `max_events` as a runaway guard). Returns events executed.
  std::uint64_t run(std::uint64_t max_events = 50'000'000ULL);

 private:
  void register_node(std::unique_ptr<Node> node);

  Scheduler scheduler_;
  Channel channel_;
  std::vector<std::unique_ptr<Node>> owned_;
  std::vector<Node*> order_;
  std::unordered_map<NodeId, Node*> by_id_;
};

}  // namespace sld::sim
