// Automatic repeat request (ARQ) policy: timeout, bounded retries, and
// exponential backoff with jitter.
//
// The paper side-steps channel loss by assuming "reliable delivery via
// retransmission"; this is the retransmission. The protocol layers (probe
// exchange, sensor queries, alert transport) consult an ArqConfig to decide
// how long to wait for a response and how to pace retries. With
// `enabled = false` (the default) no timeout events are scheduled and no
// randomness is drawn, so the fault-free event sequence is untouched.
#pragma once

#include <cstddef>

#include "sim/time.hpp"
#include "util/rng.hpp"

namespace sld::sim {

struct ArqConfig {
  /// Master switch. Disabled: requests are sent once and losses are
  /// silent, exactly the seed behaviour.
  bool enabled = false;
  /// Wait after each (re)transmission before declaring it lost. Must
  /// comfortably exceed the request+reply air time (~8 ms each way at
  /// 19.2 kbps) plus jitter.
  SimTime initial_timeout_ns = 250 * kMillisecond;
  /// Retransmissions after the first attempt; attempt count is
  /// 1 + max_retries in the worst case.
  std::size_t max_retries = 3;
  /// Timeout multiplier per retry (exponential backoff).
  double backoff_factor = 2.0;
  /// Uniform +/- fraction applied to each timeout so retry storms from
  /// simultaneous losers decorrelate.
  double jitter_fraction = 0.1;
};

/// Timeout for `attempt` (0 = first transmission):
///   initial * backoff^attempt * (1 + U(-jitter, +jitter)).
/// Draws from `rng` only if jitter_fraction > 0.
SimTime arq_timeout(const ArqConfig& config, std::size_t attempt,
                    util::Rng& rng);

}  // namespace sld::sim
