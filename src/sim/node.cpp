#include "sim/node.hpp"

#include <stdexcept>
#include <utility>

#include "check/invariant.hpp"
#include "sim/channel.hpp"
#include "sim/recoverable.hpp"

namespace sld::sim {

Node::Node(NodeId id, util::Vec2 position, double range_ft)
    : id_(id), position_(position), range_(range_ft) {
  if (range_ft <= 0.0)
    throw std::invalid_argument("Node: range must be positive");
}

void Node::attach(Channel* channel, Scheduler* scheduler) {
  if (channel == nullptr || scheduler == nullptr)
    throw std::invalid_argument("Node::attach: null environment");
  channel_ = channel;
  scheduler_ = scheduler;
}

Channel& Node::channel() const {
  if (channel_ == nullptr) throw std::logic_error("Node: not attached");
  return *channel_;
}

Scheduler& Node::scheduler() const {
  if (scheduler_ == nullptr) throw std::logic_error("Node: not attached");
  return *scheduler_;
}

bool Node::alive_at(SimTime now) const {
  if (down_) return false;
  // Static crash windows cover tests that drive the channel without
  // Network::start_all (no transition events): a timer may never act
  // inside a configured window even if crash_now() was never called.
  if (channel_ != nullptr && channel_->faults().enabled() &&
      channel_->faults().node_crashed(id_, now))
    return false;
  return true;
}

void Node::schedule_timer(SimTime delay, std::function<void()> action) {
  schedule_timer_at(scheduler().now() + delay, std::move(action));
}

void Node::schedule_timer_at(SimTime when, std::function<void()> action) {
  Scheduler& sched = scheduler();
  const std::uint32_t epoch = boot_epoch_;
  sched.schedule_at(when, [this, epoch, action = std::move(action)]() {
    if (epoch != boot_epoch_ || !alive_at(scheduler_->now())) {
      ++timers_dropped_;
      return;
    }
    SLD_INVARIANT(!down_ && !(channel_ != nullptr &&
                              channel_->faults().enabled() &&
                              channel_->faults().node_crashed(
                                  id_, scheduler_->now())),
                  "node timer fired while its owner is down");
    action();
  });
}

void Node::crash_now() {
  if (down_) return;
  down_ = true;
  crash_time_ = scheduler().now();
  if (auto* r = dynamic_cast<Recoverable*>(this)) r->on_crash(crash_time_);
}

void Node::reboot_now() {
  if (!down_) return;
  down_ = false;
  ++boot_epoch_;
  const SimTime now = scheduler().now();
  const SimTime downtime = now - crash_time_;
  if (channel_ != nullptr && channel_->tracer().on()) {
    const obs::Tracer& trace = channel_->tracer();
    trace.emit(trace.event("node.reboot")
                   .f("node", id_)
                   .f("down_ns", static_cast<std::int64_t>(downtime)));
  }
  if (auto* r = dynamic_cast<Recoverable*>(this)) r->on_reboot(now, downtime);
}

}  // namespace sld::sim
