#include "sim/node.hpp"

#include <stdexcept>

namespace sld::sim {

Node::Node(NodeId id, util::Vec2 position, double range_ft)
    : id_(id), position_(position), range_(range_ft) {
  if (range_ft <= 0.0)
    throw std::invalid_argument("Node: range must be positive");
}

void Node::attach(Channel* channel, Scheduler* scheduler) {
  if (channel == nullptr || scheduler == nullptr)
    throw std::invalid_argument("Node::attach: null environment");
  channel_ = channel;
  scheduler_ = scheduler;
}

Channel& Node::channel() const {
  if (channel_ == nullptr) throw std::logic_error("Node: not attached");
  return *channel_;
}

Scheduler& Node::scheduler() const {
  if (scheduler_ == nullptr) throw std::logic_error("Node: not attached");
  return *scheduler_;
}

}  // namespace sld::sim
