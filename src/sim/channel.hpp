// The radio channel: range-limited unicast with transmission + propagation
// delay, optional loss, wormhole tunnels, and eavesdropping hooks.
//
// Wormholes are modelled at the channel level, matching the paper's §4
// setup ("a wormhole ... which forwards every message received at one side
// immediately to the other side"): a transmission whose radiating position
// reaches one tunnel mouth is re-radiated at the other mouth. Deliveries
// arriving through a tunnel carry `via_wormhole = true` ground truth and
// the tunnel's extra delay; RSSI ranging on such a delivery measures the
// distance to the *exit mouth*, which is precisely why the paper's
// consistency check catches wormhole-replayed beacons.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "obs/trace.hpp"
#include "sim/faults.hpp"
#include "sim/message.hpp"
#include "sim/node.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace sld::sim {

/// Devices (typically attackers) that can hear transmissions near them.
class RadioObserver {
 public:
  virtual ~RadioObserver() = default;

  /// Called for every transmission radiating within range of the observer.
  /// Returning true suppresses delivery to the intended receiver (models
  /// shield-and-replay / jamming); returning false leaves it untouched.
  virtual bool on_overhear(const Message& msg, const TxContext& ctx) = 0;

  /// Where the observer's radio hardware sits.
  virtual util::Vec2 observer_position() const = 0;
};

/// A wormhole tunnel between two field positions.
struct WormholeLink {
  util::Vec2 mouth_a;
  util::Vec2 mouth_b;
  /// Re-transmission range at the exit mouth, in feet.
  double exit_range_ft = 0.0;
  /// Latency the tunnel adds, in CPU cycles ("low latency link"; the
  /// paper's simulated wormhole forwards immediately, so default 0).
  double extra_delay_cycles = 0.0;
};

struct ChannelConfig {
  /// Per-delivery loss probability (paper assumes reliable delivery via
  /// retransmission, so default 0). Kept separate from `faults` for
  /// backward compatibility; both contribute independently.
  double loss_probability = 0.0;
  /// Fixed per-packet framing overhead in bytes (preamble/header/CRC).
  std::size_t frame_overhead_bytes = 16;
  /// Composable fault injection (loss models, duplication, corruption,
  /// jitter, crash windows). All off by default.
  FaultPlan faults;
};

/// Counters exposed for tests and experiment reporting. Every delivery
/// attempt is conserved: it is lost, dropped by a fault, dropped at a
/// crashed receiver, or delivered — and a duplication fault adds one extra
/// delivery. So
///
///   deliveries + losses + dropped_by_fault + crashed_rx_drops
///       + partition_drops
///     == delivery_attempts + duplicates
///
/// always, which `SLD_INVARIANT` asserts after every attempt in
/// invariant-enabled builds and the property suite asserts on the public
/// stats.
struct ChannelStats {
  std::uint64_t transmissions = 0;
  /// Reachable (src, dst) delivery attempts, direct or through a wormhole.
  std::uint64_t delivery_attempts = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t wormhole_deliveries = 0;
  std::uint64_t losses = 0;
  std::uint64_t suppressed = 0;
  std::uint64_t out_of_range = 0;
  // Fault-injection outcomes (all zero when ChannelConfig::faults is off).
  std::uint64_t dropped_by_fault = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t corrupted = 0;
  /// crashed_drops = crashed_tx_drops + crashed_rx_drops (kept as the
  /// combined total for existing consumers).
  std::uint64_t crashed_drops = 0;
  std::uint64_t crashed_tx_drops = 0;
  std::uint64_t crashed_rx_drops = 0;
  /// Deliveries dropped because they crossed an active partition cut.
  std::uint64_t partition_drops = 0;
};

/// Per-node radio activity, the basis of energy accounting (tx and rx are
/// the dominant energy consumers on a mote).
struct NodeRadioStats {
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;

  /// Energy estimate with CC1000-class costs (~ 0.080 uJ/bit tx at 0 dBm,
  /// ~ 0.038 uJ/bit rx), in microjoules.
  double energy_uj(double tx_uj_per_byte = 0.64,
                   double rx_uj_per_byte = 0.30) const {
    return static_cast<double>(bytes_sent) * tx_uj_per_byte +
           static_cast<double>(bytes_received) * rx_uj_per_byte;
  }
};

class Channel {
 public:
  Channel(Scheduler& scheduler, ChannelConfig config, util::Rng rng);

  /// Registers a node (non-owning; the Network owns nodes).
  void add_node(Node* node);

  /// Registers an extra address for an already-registered node. Used for
  /// detecting IDs: packets sent to the alias are delivered to the owning
  /// node, whose radio hardware is the same.
  void add_alias(NodeId alias, Node* node);

  void add_wormhole(WormholeLink link);
  const std::vector<WormholeLink>& wormholes() const { return wormholes_; }

  void add_observer(RadioObserver* observer);

  /// Sends `msg` from `sender` using the sender's true position/range.
  /// The message is delivered directly if the destination is in range and
  /// additionally through every wormhole whose mouths connect them.
  void unicast(const Node& sender, Message msg);

  /// Injects a transmission with an arbitrary physical context — used by
  /// attacker devices replaying captured packets.
  void inject(const TxContext& ctx, Message msg);

  /// True if `to` can hear a transmission radiating from `from_pos` with
  /// range `from_range` directly (no wormhole).
  bool direct_reach(const util::Vec2& from_pos, double from_range,
                    const Node& to) const;

  /// True if a transmission from `a` reaches `b` directly or via a tunnel.
  bool connected(const Node& a, const Node& b) const;

  Node* find(NodeId id) const;

  const ChannelStats& stats() const { return stats_; }

  /// The channel's fault injector (crash queries, plan introspection).
  const FaultInjector& faults() const { return faults_; }

  /// Radio activity of one node (zeros for unknown ids).
  NodeRadioStats node_radio(NodeId id) const;

  /// Per-node radio activity of every node that sent or received anything.
  const std::unordered_map<NodeId, NodeRadioStats>& radio_all() const {
    return radio_;
  }

  /// Installs the event tracer (off by default). Emits one record per
  /// packet fate: pkt.send / pkt.deliver / pkt.loss / pkt.out_of_range /
  /// pkt.suppressed / pkt.fault_drop / pkt.duplicate / pkt.corrupt /
  /// pkt.crash_tx / pkt.crash_rx / pkt.partition_drop.
  void set_tracer(obs::Tracer tracer) { trace_ = std::move(tracer); }

  /// The installed tracer (off by default). Nodes and the Network borrow
  /// it for lifecycle events (node.reboot, partition.start/heal).
  const obs::Tracer& tracer() const { return trace_; }

  /// Radio activity summed over every node — the basis of whole-network
  /// energy accounting (e.g. the energy overhead of retransmissions).
  NodeRadioStats total_radio() const;

  /// Air time of a `payload_bytes`-byte packet, in nanoseconds.
  SimTime packet_airtime_ns(std::size_t payload_bytes) const;

  /// Air time of a `payload_bytes`-byte packet, in CPU cycles (the unit
  /// replay-delay reasoning uses).
  double packet_airtime_cycles(std::size_t payload_bytes) const;

  /// Optional hot-path micro-counter sink (scan fan-out, packet lifetime;
  /// see sim/hotstats.hpp). Not owned; nullptr turns recording back off.
  void set_hot_stats(HotStats* hot) { hot_ = hot; }

 private:
  void transmit(const TxContext& ctx, const Message& msg);
  void deliver(Node& dst, const TxContext& ctx, const Message& msg);
  void schedule_delivery(Node& dst, const TxContext& ctx, const Message& msg,
                         SimTime delay);
  /// Asserts the ChannelStats conservation law (no-op in Release builds).
  void check_conservation() const;

  Scheduler& scheduler_;
  ChannelConfig config_;
  util::Rng rng_;
  FaultInjector faults_;
  std::unordered_map<NodeId, Node*> nodes_;
  std::vector<WormholeLink> wormholes_;
  std::vector<RadioObserver*> observers_;
  ChannelStats stats_;
  std::unordered_map<NodeId, NodeRadioStats> radio_;
  obs::Tracer trace_;
  HotStats* hot_ = nullptr;
};

}  // namespace sld::sim
