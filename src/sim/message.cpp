#include "sim/message.hpp"

#include "obs/memstats.hpp"

namespace sld::sim {

util::Bytes BeaconRequestPayload::serialize() const {
  SLD_MEM_SCOPE("messages");
  util::ByteWriter w;
  w.u64(nonce);
  return w.take();
}

BeaconRequestPayload BeaconRequestPayload::parse(const util::Bytes& bytes) {
  util::ByteReader r(bytes);
  BeaconRequestPayload p;
  p.nonce = r.u64();
  return p;
}

util::Bytes BeaconReplyPayload::serialize() const {
  SLD_MEM_SCOPE("messages");
  util::ByteWriter w;
  w.u64(nonce);
  w.f64(claimed_position.x);
  w.f64(claimed_position.y);
  w.f64(processing_bias_cycles);
  w.f64(range_manipulation_ft);
  w.u8(fake_wormhole_indication ? 1 : 0);
  return w.take();
}

BeaconReplyPayload BeaconReplyPayload::parse(const util::Bytes& bytes) {
  util::ByteReader r(bytes);
  BeaconReplyPayload p;
  p.nonce = r.u64();
  p.claimed_position.x = r.f64();
  p.claimed_position.y = r.f64();
  p.processing_bias_cycles = r.f64();
  p.range_manipulation_ft = r.f64();
  p.fake_wormhole_indication = r.u8() != 0;
  return p;
}

util::Bytes AlertPayload::serialize() const {
  SLD_MEM_SCOPE("messages");
  util::ByteWriter w;
  w.u32(reporter);
  w.u32(target);
  return w.take();
}

AlertPayload AlertPayload::parse(const util::Bytes& bytes) {
  util::ByteReader r(bytes);
  AlertPayload p;
  p.reporter = r.u32();
  p.target = r.u32();
  return p;
}

util::Bytes RevocationPayload::serialize() const {
  SLD_MEM_SCOPE("messages");
  util::ByteWriter w;
  w.u32(revoked);
  return w.take();
}

RevocationPayload RevocationPayload::parse(const util::Bytes& bytes) {
  util::ByteReader r(bytes);
  RevocationPayload p;
  p.revoked = r.u32();
  return p;
}

}  // namespace sld::sim
