#include "sim/arq.hpp"

#include <cmath>
#include <stdexcept>

#include "check/invariant.hpp"

namespace sld::sim {

SimTime arq_timeout(const ArqConfig& config, std::size_t attempt,
                    util::Rng& rng) {
  SLD_INVARIANT(attempt <= config.max_retries,
                "retries bounded: attempt index " << attempt
                    << " exceeds max_retries=" << config.max_retries);
  if (config.initial_timeout_ns <= 0)
    throw std::invalid_argument("ArqConfig: timeout must be positive");
  if (config.backoff_factor < 1.0)
    throw std::invalid_argument("ArqConfig: backoff factor < 1");
  if (config.jitter_fraction < 0.0 || config.jitter_fraction >= 1.0)
    throw std::invalid_argument("ArqConfig: jitter fraction outside [0, 1)");
  double timeout = static_cast<double>(config.initial_timeout_ns) *
                   std::pow(config.backoff_factor,
                            static_cast<double>(attempt));
  if (config.jitter_fraction > 0.0) {
    timeout *= 1.0 + rng.uniform(-config.jitter_fraction,
                                 config.jitter_fraction);
  }
  return static_cast<SimTime>(timeout);
}

}  // namespace sld::sim
