#include "sim/deployment.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sld::sim {

namespace {
std::vector<const NodeSpec*> filter(const std::vector<NodeSpec>& nodes,
                                    bool want_beacon, int want_malicious) {
  std::vector<const NodeSpec*> out;
  for (const auto& n : nodes) {
    if (n.beacon != want_beacon) continue;
    if (want_malicious >= 0 && n.malicious != (want_malicious != 0)) continue;
    out.push_back(&n);
  }
  return out;
}
}  // namespace

std::vector<const NodeSpec*> Deployment::beacons() const {
  return filter(nodes, true, -1);
}

std::vector<const NodeSpec*> Deployment::benign_beacons() const {
  return filter(nodes, true, 0);
}

std::vector<const NodeSpec*> Deployment::malicious_beacons() const {
  return filter(nodes, true, 1);
}

std::vector<const NodeSpec*> Deployment::sensors() const {
  return filter(nodes, false, -1);
}

const NodeSpec* Deployment::find(NodeId id) const {
  for (const auto& n : nodes)
    if (n.id == id) return &n;
  return nullptr;
}

namespace {
void validate_config(const DeploymentConfig& config) {
  if (config.beacon_count > config.total_nodes)
    throw std::invalid_argument("deployment: more beacons than nodes");
  if (config.malicious_beacon_count > config.beacon_count)
    throw std::invalid_argument(
        "deployment: more malicious beacons than beacons");
  if (config.field.area() <= 0.0)
    throw std::invalid_argument("deployment: empty field");
  if (config.comm_range_ft <= 0.0)
    throw std::invalid_argument("deployment: bad comm range");
}
}  // namespace

Deployment deploy_random(const DeploymentConfig& config, util::Rng& rng) {
  validate_config(config);

  Deployment d;
  d.config = config;
  d.nodes.reserve(config.total_nodes);

  const auto malicious_idx = rng.sample_indices(config.beacon_count,
                                                config.malicious_beacon_count);
  std::vector<bool> is_malicious(config.beacon_count, false);
  for (const auto i : malicious_idx) is_malicious[i] = true;

  for (std::size_t i = 0; i < config.beacon_count; ++i) {
    NodeSpec spec;
    spec.id = kFirstBeaconId + static_cast<NodeId>(i);
    spec.position = {rng.uniform(config.field.x0, config.field.x1),
                     rng.uniform(config.field.y0, config.field.y1)};
    spec.beacon = true;
    spec.malicious = is_malicious[i];
    d.nodes.push_back(spec);
  }
  const std::size_t sensor_count = config.total_nodes - config.beacon_count;
  for (std::size_t i = 0; i < sensor_count; ++i) {
    NodeSpec spec;
    spec.id = kNonBeaconIdBase + static_cast<NodeId>(i);
    spec.position = {rng.uniform(config.field.x0, config.field.x1),
                     rng.uniform(config.field.y0, config.field.y1)};
    d.nodes.push_back(spec);
  }
  return d;
}

Deployment deploy_grid(const DeploymentConfig& config, util::Rng& rng) {
  validate_config(config);

  Deployment d;
  d.config = config;
  d.nodes.reserve(config.total_nodes);

  // Near-square lattice with cells sized to hold every node.
  const auto cols = static_cast<std::size_t>(std::ceil(
      std::sqrt(static_cast<double>(config.total_nodes) *
                config.field.width() / config.field.height())));
  const std::size_t rows =
      (config.total_nodes + cols - 1) / std::max<std::size_t>(cols, 1);
  const double dx = config.field.width() / static_cast<double>(cols);
  const double dy = config.field.height() / static_cast<double>(rows);

  const auto malicious_idx = rng.sample_indices(config.beacon_count,
                                                config.malicious_beacon_count);
  std::vector<bool> is_malicious(config.beacon_count, false);
  for (const auto i : malicious_idx) is_malicious[i] = true;

  for (std::size_t i = 0; i < config.total_nodes; ++i) {
    const std::size_t r = i / cols;
    const std::size_t c = i % cols;
    NodeSpec spec;
    spec.position = {config.field.x0 + (static_cast<double>(c) + 0.5) * dx,
                     config.field.y0 + (static_cast<double>(r) + 0.5) * dy};
    if (i < config.beacon_count) {
      spec.id = kFirstBeaconId + static_cast<NodeId>(i);
      spec.beacon = true;
      spec.malicious = is_malicious[i];
    } else {
      spec.id = kNonBeaconIdBase +
                static_cast<NodeId>(i - config.beacon_count);
    }
    d.nodes.push_back(spec);
  }
  return d;
}

}  // namespace sld::sim
