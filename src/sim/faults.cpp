#include "sim/faults.hpp"

#include <stdexcept>
#include <string>
#include <utility>

namespace sld::sim {

GilbertElliottConfig GilbertElliottConfig::for_average_loss(
    double target_loss, double mean_burst_len) {
  if (target_loss < 0.0 || target_loss >= 1.0)
    throw std::invalid_argument("GilbertElliott: target loss outside [0, 1)");
  if (mean_burst_len < 1.0)
    throw std::invalid_argument("GilbertElliott: burst length < 1");
  GilbertElliottConfig ge;
  ge.loss_good = 0.0;
  ge.loss_bad = 1.0;
  ge.p_exit_bad = 1.0 / mean_burst_len;
  // Stationary P(bad) must equal target_loss:
  //   p_enter / (p_enter + p_exit) = target  =>  p_enter = p_exit * t/(1-t).
  ge.p_enter_bad = ge.p_exit_bad * target_loss / (1.0 - target_loss);
  return ge;
}

bool FaultPlan::any_enabled() const {
  return loss_probability > 0.0 || burst.enabled() ||
         duplicate_probability > 0.0 || corruption_probability > 0.0 ||
         max_extra_delay_ns > 0 || !node_loss.empty() || !link_loss.empty() ||
         !crashes.empty() || clock_drift.enabled() || !partitions.empty();
}

FaultInjector::FaultInjector(FaultPlan plan, util::Rng rng)
    : plan_(std::move(plan)), rng_(rng), enabled_(plan_.any_enabled()) {
  auto check_p = [](double p, const char* what) {
    if (p < 0.0 || p > 1.0)
      throw std::invalid_argument(std::string("FaultPlan: ") + what +
                                  " outside [0, 1]");
  };
  check_p(plan_.loss_probability, "loss probability");
  check_p(plan_.duplicate_probability, "duplicate probability");
  check_p(plan_.corruption_probability, "corruption probability");
  for (const auto& [node, p] : plan_.node_loss) check_p(p, "node loss");
  for (const auto& [link, p] : plan_.link_loss) check_p(p, "link loss");
  for (const auto& w : plan_.crashes) {
    if (w.end <= w.start)
      throw std::invalid_argument("FaultPlan: empty crash window");
  }
  if (plan_.clock_drift.max_drift_ppm < 0.0)
    throw std::invalid_argument("FaultPlan: negative clock drift");
  if (plan_.clock_drift.enabled() && plan_.clock_drift.turnaround_cycles <= 0.0)
    throw std::invalid_argument("FaultPlan: non-positive drift turnaround");
  partition_sides_.reserve(plan_.partitions.size());
  for (const auto& p : plan_.partitions) {
    if (p.end <= p.start)
      throw std::invalid_argument("FaultPlan: empty partition window");
    if (p.side_a.empty())
      throw std::invalid_argument("FaultPlan: partition with empty side");
    partition_sides_.emplace_back(p.side_a.begin(), p.side_a.end());
  }
  // One draw from a child stream, so per-node drift rates are reproducible
  // without ever touching the decide() stream.
  drift_seed_ = rng_.fork(0xd21f7ULL)();
}

bool FaultInjector::node_crashed(NodeId node, SimTime t) const {
  for (const auto& w : plan_.crashes) {
    if (w.node == node && t >= w.start && t < w.end) return true;
  }
  return false;
}

bool FaultInjector::partition_blocked(NodeId src, NodeId dst,
                                      SimTime t) const {
  for (std::size_t i = 0; i < partition_sides_.size(); ++i) {
    const PartitionWindow& w = plan_.partitions[i];
    if (t < w.start || t >= w.end) continue;
    const auto& side = partition_sides_[i];
    if (side.contains(src) != side.contains(dst)) return true;
  }
  return false;
}

double FaultInjector::drift_ppm(NodeId node) const {
  if (!plan_.clock_drift.enabled()) return 0.0;
  std::uint64_t x =
      drift_seed_ ^ (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(node) + 1));
  x = util::splitmix64(x);
  const double u = static_cast<double>(x >> 11) * 0x1.0p-53;  // [0, 1)
  return (2.0 * u - 1.0) * plan_.clock_drift.max_drift_ppm;
}

double FaultInjector::rtt_skew_cycles(NodeId receiver, NodeId sender) const {
  if (!plan_.clock_drift.enabled()) return 0.0;
  return (drift_ppm(receiver) - drift_ppm(sender)) * 1e-6 *
         plan_.clock_drift.turnaround_cycles;
}

bool FaultInjector::link_lost(NodeId src, NodeId dst) {
  // i.i.d. term, applied to every link.
  if (plan_.loss_probability > 0.0 &&
      rng_.bernoulli(plan_.loss_probability))
    return true;

  // Gilbert-Elliott chain, one independent state per (src, dst) link.
  if (plan_.burst.enabled()) {
    bool& in_bad = link_in_bad_[FaultPlan::link_key(src, dst)];
    const double loss_p =
        in_bad ? plan_.burst.loss_bad : plan_.burst.loss_good;
    const bool lost = rng_.bernoulli(loss_p);
    // Evolve the chain after sampling the current state's loss.
    if (in_bad) {
      if (rng_.bernoulli(plan_.burst.p_exit_bad)) in_bad = false;
    } else {
      if (rng_.bernoulli(plan_.burst.p_enter_bad)) in_bad = true;
    }
    if (lost) return true;
  }

  // Per-node receiver-side loss.
  if (!plan_.node_loss.empty()) {
    const auto it = plan_.node_loss.find(dst);
    if (it != plan_.node_loss.end() && rng_.bernoulli(it->second))
      return true;
  }

  // Per-link loss.
  if (!plan_.link_loss.empty()) {
    const auto it = plan_.link_loss.find(FaultPlan::link_key(src, dst));
    if (it != plan_.link_loss.end() && rng_.bernoulli(it->second))
      return true;
  }

  return false;
}

FaultInjector::DeliveryFate FaultInjector::decide(NodeId src, NodeId dst) {
  DeliveryFate fate;
  if (!enabled_) return fate;
  if (link_lost(src, dst)) {
    fate.dropped = true;
    return fate;  // no further draws for a lost packet
  }
  if (plan_.duplicate_probability > 0.0)
    fate.duplicated = rng_.bernoulli(plan_.duplicate_probability);
  if (plan_.corruption_probability > 0.0)
    fate.corrupted = rng_.bernoulli(plan_.corruption_probability);
  if (plan_.max_extra_delay_ns > 0)
    fate.extra_delay_ns = static_cast<SimTime>(rng_.uniform_u64(
        static_cast<std::uint64_t>(plan_.max_extra_delay_ns)));
  return fate;
}

void FaultInjector::corrupt(Message& msg) {
  if (msg.payload.empty()) {
    // Nothing to flip in the payload: damage the tag itself.
    msg.mac ^= 1ULL << rng_.uniform_u64(64);
    return;
  }
  const std::size_t index =
      static_cast<std::size_t>(rng_.uniform_u64(msg.payload.size()));
  // XOR with a nonzero byte so the payload always actually changes.
  msg.payload[index] ^= static_cast<std::uint8_t>(1 + rng_.uniform_u64(255));
}

}  // namespace sld::sim
