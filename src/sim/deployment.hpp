// Random deployment of the sensing field (paper §4: N nodes uniformly at
// random in a square field; N_b of them beacons, N_a of those compromised).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/message.hpp"
#include "util/geometry.hpp"
#include "util/rng.hpp"

namespace sld::sim {

/// First ID assigned to non-beacon sensors. Beacon IDs start at 1, so an
/// ID's numeric range reveals beacon vs non-beacon — exactly the property
/// the paper assumes ("this ID should be recognized as a non-beacon node
/// ID"). Detecting IDs are drawn from the non-beacon range.
inline constexpr NodeId kFirstBeaconId = 1;
inline constexpr NodeId kNonBeaconIdBase = 0x00100000u;
inline constexpr NodeId kNonBeaconIdLimit = 0x7fffffffu;

/// Returns true if `id` reads as a beacon ID.
constexpr bool is_beacon_id(NodeId id) { return id < kNonBeaconIdBase; }

struct DeploymentConfig {
  std::size_t total_nodes = 1000;        // N
  std::size_t beacon_count = 100;        // N_b
  std::size_t malicious_beacon_count = 10;  // N_a
  util::Rect field = util::Rect::square(1000.0);  // feet
  double comm_range_ft = 150.0;
};

/// One deployed device.
struct NodeSpec {
  NodeId id = 0;
  util::Vec2 position;
  bool beacon = false;
  bool malicious = false;  // only meaningful when beacon
};

/// A concrete deployment: node specs with beacons first.
struct Deployment {
  DeploymentConfig config;
  std::vector<NodeSpec> nodes;

  std::vector<const NodeSpec*> beacons() const;
  std::vector<const NodeSpec*> benign_beacons() const;
  std::vector<const NodeSpec*> malicious_beacons() const;
  std::vector<const NodeSpec*> sensors() const;

  const NodeSpec* find(NodeId id) const;
};

/// Uniform random deployment; the malicious subset is drawn uniformly from
/// the beacons.
Deployment deploy_random(const DeploymentConfig& config, util::Rng& rng);

/// Grid deployment: nodes on a near-square lattice covering the field
/// (beacons first, row-major). Deterministic apart from the malicious
/// subset, which is still drawn from `rng`. Useful for reproducible
/// topology tests and density studies.
Deployment deploy_grid(const DeploymentConfig& config, util::Rng& rng);

}  // namespace sld::sim
