// Crash/reboot state-loss hooks for simulated devices.
//
// PR 1's crash windows only silenced a node's radio; the node's volatile
// state (pending ARQ retries, in-flight probes, un-flushed alerts) survived
// the "crash" untouched. Nodes that model state loss implement Recoverable:
// Network schedules crash/reboot transitions from the FaultPlan's crash
// windows, and Node::crash_now()/reboot_now() invoke these hooks so a
// rebooting device re-initializes instead of resuming impossible state.
#pragma once

#include "sim/time.hpp"

namespace sld::sim {

class Recoverable {
 public:
  virtual ~Recoverable() = default;

  /// The device loses power at `now`: volatile state is gone. Drop pending
  /// transactions here; do not schedule events (the node is down).
  virtual void on_crash(SimTime now) = 0;

  /// The device reboots at `now` after `downtime` ns offline. Re-establish
  /// whatever schedule a freshly booted device would; timers scheduled
  /// before the crash have been invalidated by the boot-epoch bump.
  virtual void on_reboot(SimTime now, SimTime downtime) = 0;
};

}  // namespace sld::sim
