// Wire messages and the PHY-level transmission context.
//
// `Message` is what the protocol layer authenticates and parses; `TxContext`
// is what the radio "physics" knows about a transmission — where the energy
// actually radiated from (which is what RSSI ranging measures), whether it
// crossed a wormhole, and how much replay delay it accumulated (which is
// what the RTT filter measures). Keeping the two separate is what lets
// attackers lie at the packet layer while the physics stays honest.
#pragma once

#include <cstdint>

#include "crypto/mac.hpp"
#include "sim/time.hpp"
#include "util/bytes.hpp"
#include "util/geometry.hpp"

namespace sld::sim {

using NodeId = std::uint32_t;

/// Message kinds used by the secure-location-discovery protocols.
enum class MsgType : std::uint16_t {
  kBeaconRequest = 1,  // requester -> beacon: "send me a beacon signal"
  kBeaconReply = 2,    // beacon -> requester: location + timing report
  kAlertReport = 3,    // detecting node -> base station
  kRevocation = 4,     // base station -> network broadcast
  kAppData = 5,        // application traffic (examples)
};

/// An authenticated unicast packet.
struct Message {
  NodeId src = 0;  // claimed sender id
  NodeId dst = 0;
  MsgType type = MsgType::kAppData;
  util::Bytes payload;
  crypto::MacTag mac = 0;
};

/// Physical context of one transmission, filled in by the channel (or by an
/// attacker device doing the transmitting).
struct TxContext {
  /// Where the radio energy actually radiated from. For a genuine sender
  /// this is its position; for a wormhole exit or replay device it is the
  /// replayer's position. RSSI ranging measures distance to this point.
  util::Vec2 radiating_position;

  /// Transmission range of the radiating device, in feet.
  double radiating_range = 0.0;

  /// Extra delay accumulated by replays/wormholes, in CPU cycles; the RTT
  /// filter sees this on top of the honest round-trip time.
  double extra_delay_cycles = 0.0;

  /// Ground truth: did this copy cross a wormhole tunnel? (Wormhole
  /// detectors are modelled as catching this with probability p_d.)
  bool via_wormhole = false;

  /// Ground truth: is this copy a replay by an attacker device (locally or
  /// through a wormhole) rather than the original transmission?
  bool is_replay = false;
};

/// A message as it arrives at a receiver.
struct Delivery {
  Message msg;
  TxContext ctx;
  SimTime rx_time = 0;
};

/// --- Protocol payloads -----------------------------------------------

/// Request for a beacon signal. The nonce pairs replies with requests and
/// feeds the RTT measurement.
struct BeaconRequestPayload {
  std::uint64_t nonce = 0;

  util::Bytes serialize() const;
  static BeaconRequestPayload parse(const util::Bytes& bytes);
};

/// Beacon signal contents: the claimed location plus the receiver-side
/// timing report (t3 - t2) used by the RTT protocol. A malicious beacon can
/// skew `processing_bias_cycles` to make its own signal look replayed.
struct BeaconReplyPayload {
  std::uint64_t nonce = 0;
  util::Vec2 claimed_position;
  /// Lie added to the reported (t3 - t2): positive values inflate the
  /// observed RTT (signal appears locally replayed); zero for honest nodes.
  double processing_bias_cycles = 0.0;
  /// Physical-layer manipulation of the ranging signal, in feet; shifts the
  /// distance the receiver measures. Zero for honest nodes.
  double range_manipulation_ft = 0.0;
  /// Manipulation that makes wormhole detectors fire at the receiver (the
  /// "convince them it came through a wormhole" strategy). Honest: false.
  bool fake_wormhole_indication = false;

  util::Bytes serialize() const;
  static BeaconReplyPayload parse(const util::Bytes& bytes);
};

/// Alert from a detecting node to the base station (paper §3.1: "every
/// alert ... includes the ID of the detecting node and the ID of the target
/// node"). The reporter field is the *beacon* identity, not the detecting
/// ID used during the probe.
struct AlertPayload {
  NodeId reporter = 0;
  NodeId target = 0;

  util::Bytes serialize() const;
  static AlertPayload parse(const util::Bytes& bytes);
};

/// Base-station revocation notice.
struct RevocationPayload {
  NodeId revoked = 0;

  util::Bytes serialize() const;
  static RevocationPayload parse(const util::Bytes& bytes);
};

}  // namespace sld::sim
