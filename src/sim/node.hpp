// Base class for every device participating in the simulation. Protocol
// behaviour (beacon, sensor, detecting node, attacker) lives in subclasses;
// the base class owns identity, physics (position, range), and wiring to
// the channel/scheduler.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/message.hpp"
#include "sim/scheduler.hpp"
#include "util/geometry.hpp"

namespace sld::sim {

class Channel;

class Node {
 public:
  Node(NodeId id, util::Vec2 position, double range_ft);
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }
  const util::Vec2& position() const { return position_; }
  double range() const { return range_; }

  /// True for beacon nodes (their IDs are recognisable as beacon IDs).
  virtual bool is_beacon() const { return false; }

  /// Invoked by the channel when an authentic-looking packet addressed to
  /// this node arrives. MAC verification is the receiver's job.
  virtual void on_message(const Delivery& delivery) = 0;

  /// Invoked once when the simulation starts; schedule initial work here.
  virtual void start() {}

  /// Wires the node to its environment; called by Network.
  void attach(Channel* channel, Scheduler* scheduler);

  /// True while the node is inside a crash window whose transition has
  /// fired (Network::start_all schedules the transitions).
  bool is_down() const { return down_; }

  /// Number of times the node has rebooted. Timers remember the epoch they
  /// were scheduled in and refuse to fire after a reboot.
  std::uint32_t boot_epoch() const { return boot_epoch_; }

  /// Node-owned timers dropped because the node crashed or rebooted.
  std::uint64_t timers_dropped() const { return timers_dropped_; }

  /// Crash transition: marks the node down and runs its Recoverable
  /// on_crash hook (if it implements one). Called by Network.
  void crash_now();

  /// Reboot transition: marks the node up, bumps the boot epoch (dropping
  /// every timer scheduled before the crash), emits a `node.reboot` trace
  /// event, and runs the Recoverable on_reboot hook. Called by Network.
  void reboot_now();

 protected:
  Channel& channel() const;
  Scheduler& scheduler() const;

  /// Schedules `action` to run `delay` ns from now as a timer owned by
  /// this node: the action is dropped — never executed — if the node is
  /// down when the timer fires or has rebooted since it was scheduled
  /// (volatile timer state does not survive a crash).
  void schedule_timer(SimTime delay, std::function<void()> action);

  /// Absolute-time variant of schedule_timer.
  void schedule_timer_at(SimTime when, std::function<void()> action);

 private:
  /// True if the node may act at time `now`: neither dynamically down nor
  /// inside a statically configured crash window.
  bool alive_at(SimTime now) const;

  NodeId id_;
  util::Vec2 position_;
  double range_;
  Channel* channel_ = nullptr;
  Scheduler* scheduler_ = nullptr;
  bool down_ = false;
  SimTime crash_time_ = 0;
  std::uint32_t boot_epoch_ = 0;
  std::uint64_t timers_dropped_ = 0;
};

}  // namespace sld::sim
