// Base class for every device participating in the simulation. Protocol
// behaviour (beacon, sensor, detecting node, attacker) lives in subclasses;
// the base class owns identity, physics (position, range), and wiring to
// the channel/scheduler.
#pragma once

#include "sim/message.hpp"
#include "sim/scheduler.hpp"
#include "util/geometry.hpp"

namespace sld::sim {

class Channel;

class Node {
 public:
  Node(NodeId id, util::Vec2 position, double range_ft);
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }
  const util::Vec2& position() const { return position_; }
  double range() const { return range_; }

  /// True for beacon nodes (their IDs are recognisable as beacon IDs).
  virtual bool is_beacon() const { return false; }

  /// Invoked by the channel when an authentic-looking packet addressed to
  /// this node arrives. MAC verification is the receiver's job.
  virtual void on_message(const Delivery& delivery) = 0;

  /// Invoked once when the simulation starts; schedule initial work here.
  virtual void start() {}

  /// Wires the node to its environment; called by Network.
  void attach(Channel* channel, Scheduler* scheduler);

 protected:
  Channel& channel() const;
  Scheduler& scheduler() const;

 private:
  NodeId id_;
  util::Vec2 position_;
  double range_;
  Channel* channel_ = nullptr;
  Scheduler* scheduler_ = nullptr;
};

}  // namespace sld::sim
