// Event queue for the discrete-event simulator: a min-heap of (time, seq)
// ordered closures. The sequence number makes same-time events FIFO, which
// keeps runs deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace sld::sim {

/// A scheduled callback.
struct Event {
  SimTime when = 0;
  std::uint64_t seq = 0;  // tie-break: FIFO among same-time events
  std::function<void()> action;
};

/// Min-heap of events ordered by (when, seq).
class EventQueue {
 public:
  void push(SimTime when, std::function<void()> action);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Time of the earliest event; queue must be non-empty.
  SimTime next_time() const;

  /// Removes and returns the earliest event; queue must be non-empty.
  Event pop();

  void clear();

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace sld::sim
