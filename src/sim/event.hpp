// Event queue for the discrete-event simulator: a min-heap of (time, seq)
// ordered closures. The sequence number makes same-time events FIFO, which
// keeps runs deterministic.
//
// The heap is explicit (vector + hand-rolled sift) rather than a
// std::priority_queue so the sift distances — the comparisons-per-push/pop
// cost the planned flat/bucketed queue will attack — are observable. The
// (when, seq) key is a strict total order, so the pop sequence is identical
// to the std::priority_queue implementation it replaced: goldens are
// byte-for-byte unchanged. Sift-step totals are always counted (two integer
// adds per operation); per-operation histograms cost one extra branch and
// only record when a HotStats sink is wired.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/hotstats.hpp"
#include "sim/time.hpp"

namespace sld::sim {

/// A scheduled callback.
struct Event {
  SimTime when = 0;
  std::uint64_t seq = 0;  // tie-break: FIFO among same-time events
  SimTime queued_at = 0;  // schedule time, for event-wait accounting
  std::function<void()> action;
};

/// Min-heap of events ordered by (when, seq).
class EventQueue {
 public:
  void push(SimTime when, std::function<void()> action) {
    push(when, when, std::move(action));
  }

  /// `queued_at` is the clock value at schedule time; the wait histogram
  /// observes `when - queued_at` at pop.
  void push(SimTime when, SimTime queued_at, std::function<void()> action);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Time of the earliest event; queue must be non-empty.
  SimTime next_time() const;

  /// Removes and returns the earliest event; queue must be non-empty.
  Event pop();

  void clear();

  /// Optional micro-counter sink (see sim/hotstats.hpp). Not owned; must
  /// outlive the queue or be reset to nullptr.
  void set_hot_stats(HotStats* hot) { hot_ = hot; }

  /// Total sift steps (element moves) since construction / clear().
  std::uint64_t sift_up_steps() const { return sift_up_steps_; }
  std::uint64_t sift_down_steps() const { return sift_down_steps_; }

 private:
  /// True when `a` must pop after `b` — the same strict weak ordering the
  /// previous std::priority_queue comparator induced.
  static bool later(const Event& a, const Event& b) {
    if (a.when != b.when) return a.when > b.when;
    return a.seq > b.seq;
  }

  std::vector<Event> heap_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t sift_up_steps_ = 0;
  std::uint64_t sift_down_steps_ = 0;
  HotStats* hot_ = nullptr;
};

}  // namespace sld::sim
